//! Real-network TFMCC over UDP on localhost — the paper's "multicast
//! file-system synchronisation" deployment sketched in its future work,
//! reduced to a loopback demonstration.
//!
//! One sender endpoint fans data out to three receiver endpoints over
//! 127.0.0.1 sockets; all four run the same protocol core used in the
//! simulator.  The example runs for a few wall-clock seconds and prints the
//! progress of the rate ramp-up and the feedback flow.
//!
//! Run with `cargo run --example file_sync_udp`.

use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use tfmcc::proto::config::TfmccConfig;
use tfmcc::proto::packets::ReceiverId;
use tfmcc::transport::{UdpReceiverEndpoint, UdpSenderEndpoint};

fn main() -> std::io::Result<()> {
    let any: SocketAddr = "127.0.0.1:0".parse().unwrap();
    // Reserve a port for the sender so the receivers can be told about it
    // before the sender starts.
    let reserve = UdpSocket::bind(any)?;
    let sender_addr = reserve.local_addr()?;
    drop(reserve);

    let config = TfmccConfig::default();
    let receivers: Vec<UdpReceiverEndpoint> = (1..=3)
        .map(|i| {
            UdpReceiverEndpoint::start(any, sender_addr, ReceiverId(i), config.clone())
                .expect("bind receiver")
        })
        .collect();
    let receiver_addrs = receivers.iter().map(|r| r.local_addr()).collect();
    let sender = UdpSenderEndpoint::start(sender_addr, receiver_addrs, config)?;

    println!("sender on {sender_addr}, {} receivers", receivers.len());
    println!("elapsed_s,rate_kbit,packets_sent,feedback_received");
    for second in 1..=8 {
        std::thread::sleep(Duration::from_secs(1));
        let snap = sender.snapshot();
        println!(
            "{second},{:.1},{},{}",
            snap.rate * 8.0 / 1000.0,
            snap.packets_sent,
            snap.feedback_received
        );
    }
    for (i, r) in receivers.iter().enumerate() {
        let snap = r.snapshot();
        println!(
            "receiver {}: {} packets, {} reports, rtt {:.1} ms",
            i + 1,
            snap.packets_received,
            snap.feedback_sent,
            snap.rtt * 1000.0
        );
    }
    sender.shutdown();
    for r in receivers {
        r.shutdown();
    }
    println!("\nLoopback has no loss, so the session stays in slowstart and the rate doubles once per feedback round.");
    Ok(())
}
