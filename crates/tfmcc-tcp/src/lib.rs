//! A packet-level TCP Reno agent for the `netsim` simulator.
//!
//! The TFMCC evaluation needs competing TCP traffic whose congestion
//! behaviour is faithful: slow start, additive increase, fast
//! retransmit/recovery on triple duplicate ACKs, and retransmission timeouts
//! with exponential backoff.  This crate provides a greedy (always
//! backlogged) [`TcpSender`] and a cumulative-ACK [`TcpSink`], which together
//! reproduce TCP Reno's characteristic sawtooth at packet granularity.  It is
//! the stand-in for the ns-2 TCP agents used in the paper.
//!
//! Reliability is modelled only as far as congestion control requires
//! (retransmissions occupy window space and consume bandwidth); the payload
//! bytes themselves are not reassembled.

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod segment;
pub mod sender;
pub mod sink;

pub use segment::TcpSegment;
pub use sender::{TcpSender, TcpSenderConfig, TcpSenderStats};
pub use sink::TcpSink;
