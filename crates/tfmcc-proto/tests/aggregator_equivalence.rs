//! Property test: the incremental feedback aggregator matches the scan-based
//! reference implementation report-for-report.
//!
//! Two [`TfmccSender`]s — one per [`AggregatorKind`] — are driven through an
//! identical randomized sequence of receiver reports (with losses, missing
//! RTT measurements, leaves, and stretches of pure data transmission that
//! advance feedback rounds and fire CLR timeouts).  After *every* step the
//! senders' complete observable state must agree bit for bit: sending rate,
//! CLR, max RTT, feedback window, receiver counts, and the full header of
//! the next data packet (which embeds the suppression echo and the RTT
//! echo).  Any divergence between the O(N)-scan and the ordered-index
//! bookkeeping fails the property.

use proptest::prelude::*;

use tfmcc_proto::aggregator::AggregatorKind;
use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{FeedbackPacket, ReceiverId};
use tfmcc_proto::sender::TfmccSender;

/// One step of the randomized drive.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// A receiver report.
    Report {
        receiver: u64,
        loss: f64,
        rate: f64,
        rtt: f64,
        has_rtt: bool,
        in_round: bool,
    },
    /// A receiver announcing its departure.
    Leave { receiver: u64 },
    /// A stretch of data packets with no feedback (advances rounds, may
    /// trigger the CLR timeout path).
    Quiet { packets: u8 },
}

fn feedback(receiver: u64, now: f64, round: u64) -> FeedbackPacket {
    FeedbackPacket {
        receiver: ReceiverId(receiver),
        timestamp: now,
        echo_timestamp: now - 0.05,
        echo_delay: 0.001,
        calculated_rate: f64::INFINITY,
        loss_event_rate: 0.0,
        receive_rate: 100_000.0,
        rtt: 0.05,
        has_rtt_measurement: true,
        feedback_round: round,
        leaving: false,
    }
}

/// Asserts every observable aggregate of the two senders agrees, then emits
/// one data packet from each and compares the full headers.
fn assert_lockstep(now: f64, reference: &mut TfmccSender, incremental: &mut TfmccSender) {
    assert_eq!(reference.current_rate(), incremental.current_rate());
    assert_eq!(reference.clr(), incremental.clr());
    assert_eq!(reference.in_slowstart(), incremental.in_slowstart());
    assert_eq!(reference.known_receivers(), incremental.known_receivers());
    assert_eq!(
        reference.receivers_with_rtt(),
        incremental.receivers_with_rtt()
    );
    assert_eq!(reference.max_rtt(), incremental.max_rtt());
    assert_eq!(reference.feedback_window(), incremental.feedback_window());
    let a = reference.next_data(now);
    let b = incremental.next_data(now);
    assert_eq!(a, b, "data headers diverged at t={now}");
    assert_eq!(reference.stats(), incremental.stats());
}

proptest! {
    #[test]
    fn incremental_aggregator_matches_reference_report_for_report(
        seed in 0u64..1_000_000,
        steps in proptest::collection::vec(0u8..=9, 20..120),
    ) {
        // Decode the raw step codes into a concrete drive sequence using a
        // cheap deterministic generator, so one `steps` vector exercises
        // reports, leaves and quiet stretches in varying proportions.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut reference =
            TfmccSender::with_aggregator(TfmccConfig::default(), AggregatorKind::Reference);
        let mut incremental =
            TfmccSender::with_aggregator(TfmccConfig::default(), AggregatorKind::Incremental);
        let mut now = 0.0;
        for code in steps {
            let step = match code {
                0..=5 => Step::Report {
                    receiver: next() % 12 + 1,
                    loss: if next() % 3 == 0 { 0.0 } else { (next() % 1000 + 1) as f64 / 10_000.0 },
                    rate: (next() % 1_000_000 + 500) as f64,
                    rtt: (next() % 900 + 10) as f64 / 1000.0,
                    has_rtt: next() % 4 != 0,
                    in_round: next() % 4 != 0,
                },
                6 => Step::Leave { receiver: next() % 12 + 1 },
                _ => Step::Quiet { packets: (next() % 40) as u8 },
            };
            match step {
                Step::Report { receiver, loss, rate, rtt, has_rtt, in_round } => {
                    now += (next() % 100) as f64 / 1000.0;
                    // Both senders are in lockstep, so either's round counter
                    // addresses the shared current round.
                    let round = if in_round { reference.feedback_round() } else { 0 };
                    let mut fb = feedback(receiver, now, round);
                    fb.loss_event_rate = loss;
                    fb.calculated_rate = if loss > 0.0 { rate } else { f64::INFINITY };
                    fb.rtt = rtt;
                    fb.has_rtt_measurement = has_rtt;
                    reference.on_feedback(now, &fb);
                    incremental.on_feedback(now, &fb);
                }
                Step::Leave { receiver } => {
                    now += 0.01;
                    let mut fb = feedback(receiver, now, 0);
                    fb.leaving = true;
                    reference.on_feedback(now, &fb);
                    incremental.on_feedback(now, &fb);
                }
                Step::Quiet { packets } => {
                    for _ in 0..packets {
                        now += 0.25;
                        assert_lockstep(now, &mut reference, &mut incremental);
                    }
                }
            }
            assert_lockstep(now, &mut reference, &mut incremental);
        }
        prop_assert_eq!(reference.current_rate(), incremental.current_rate());
    }
}
