//! The shared experiment CLI and the common `main` of every figure binary.
//!
//! All `fig*` binaries accept the same flags (parsed by
//! [`tfmcc_runner::RunnerArgs`]):
//!
//! ```text
//! fig07_scaling [--quick | --paper] [--threads N] [--out FILE] [--bench-out FILE]
//! ```
//!
//! * `--quick` / `--paper` select the experiment [`Scale`] (the `TFMCC_SCALE`
//!   environment variable overrides both, so tests and CI can pin the scale
//!   without controlling argv);
//! * `--threads N` sizes the sweep executor (default: all cores).  Results
//!   are byte-identical for any `N`;
//! * `--out FILE` writes the figure as deterministic JSON in addition to the
//!   CSV on stdout;
//! * `--bench-out FILE` writes the run's timing trajectory (`BENCH_*.json`);
//! * `--scheduler heap|calendar` selects the event-queue scheduler for every
//!   simulation of the run, by exporting the `TFMCC_SCHEDULER` environment
//!   variable before any worker thread starts (setting the variable directly
//!   works too; both schedulers produce byte-identical results — the knob
//!   exists for performance comparisons, see `netsim::events`);
//! * `--sessions K` pins multi-session figures (fig23) to K concurrent TFMCC
//!   sessions, by exporting the `TFMCC_SESSIONS` environment variable the
//!   same way (single-session figures ignore it);
//! * `--queue KIND` selects the bottleneck queue discipline of figures with
//!   a pluggable bottleneck (fig24) — `drop-tail`, `red`, `gentle-red` or
//!   `codel` — by exporting the `TFMCC_QUEUE` environment variable the same
//!   way (other figures ignore it);
//! * `--domains K` shards every simulation of the run across K bottleneck
//!   domains (`netsim::domains`), by exporting the `TFMCC_DOMAINS`
//!   environment variable the same way — results are byte-identical for any
//!   K, only the wall clock changes.

use std::time::Instant;

use tfmcc_runner::{RunnerArgs, SweepRunner};

use crate::output::Figure;
use crate::scale::Scale;

/// Resolved configuration of one figure-binary invocation.
pub struct FigureCli {
    /// The experiment scale.
    pub scale: Scale,
    /// The sweep executor every figure function runs its points on.
    pub runner: SweepRunner,
    /// Where to write the figure JSON, if requested.
    pub out: Option<std::path::PathBuf>,
    /// Where to write the timing trajectory, if requested.
    pub bench_out: Option<std::path::PathBuf>,
}

impl FigureCli {
    /// Parses the process arguments and environment (exits on CLI errors).
    pub fn parse() -> Self {
        Self::from_runner_args(RunnerArgs::parse())
    }

    /// Builds the configuration from already-parsed arguments.
    ///
    /// A `--scheduler` choice is exported as the `TFMCC_SCHEDULER`
    /// environment variable (see [`export_scheduler_env`]), a `--sessions`
    /// choice as `TFMCC_SESSIONS` (see [`export_sessions_env`]), a
    /// `--queue` choice as `TFMCC_QUEUE` (see [`export_queue_env`]) and a
    /// `--domains` choice as `TFMCC_DOMAINS` (see [`export_domains_env`]); this
    /// runs before the sweep executor spawns its worker threads, so every
    /// simulation of the run sees it.
    pub fn from_runner_args(args: RunnerArgs) -> Self {
        export_scheduler_env(&args);
        export_sessions_env(&args);
        export_queue_env(&args);
        export_domains_env(&args);
        FigureCli {
            scale: Scale::resolve(args.quick),
            runner: SweepRunner::new(args.effective_threads()),
            out: args.out,
            bench_out: args.bench_out,
        }
    }
}

/// Exports a `--scheduler` choice as the `TFMCC_SCHEDULER` environment
/// variable, which `netsim::Simulator::new` reads for every simulation of
/// the process.  Call before spawning any worker thread; a no-op when the
/// flag was not given (so a pre-set variable stays in effect).
pub fn export_scheduler_env(args: &RunnerArgs) {
    if let Some(scheduler) = &args.scheduler {
        std::env::set_var("TFMCC_SCHEDULER", scheduler);
    }
}

/// Exports a `--sessions` choice as the `TFMCC_SESSIONS` environment
/// variable, which multi-session figures (fig23) read to pin their
/// session-count sweep.  Call before spawning any worker thread; a no-op
/// when the flag was not given (so a pre-set variable stays in effect).
pub fn export_sessions_env(args: &RunnerArgs) {
    if let Some(sessions) = args.sessions {
        std::env::set_var("TFMCC_SESSIONS", sessions.to_string());
    }
}

/// Exports a `--queue` choice as the `TFMCC_QUEUE` environment variable,
/// which figures with a pluggable bottleneck (fig24) read to select their
/// queue discipline.  Call before spawning any worker thread; a no-op when
/// the flag was not given (so a pre-set variable stays in effect).
pub fn export_queue_env(args: &RunnerArgs) {
    if let Some(queue) = &args.queue {
        std::env::set_var("TFMCC_QUEUE", queue);
    }
}

/// Exports a `--domains` choice as the `TFMCC_DOMAINS` environment
/// variable, which `netsim::Simulator::new` reads to shard every simulation
/// of the process across that many bottleneck domains.  Call before
/// spawning any worker thread; a no-op when the flag was not given (so a
/// pre-set variable stays in effect).
pub fn export_domains_env(args: &RunnerArgs) {
    if let Some(domains) = args.domains {
        std::env::set_var("TFMCC_DOMAINS", domains.to_string());
    }
}

/// The shared `main` of the figure binaries: parse the CLI, run the figure
/// on the sweep executor, print CSV to stdout, honour `--out`/`--bench-out`,
/// and log a one-line timing summary to stderr.
pub fn figure_main(run: fn(&SweepRunner, Scale) -> Figure) {
    let cli = FigureCli::parse();
    let started = Instant::now();
    let figure = run(&cli.runner, cli.scale);
    print!("{}", figure.to_csv());
    if let Some(path) = &cli.out {
        let mut json = figure.to_json().render();
        json.push('\n');
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("error: cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
    if let Some(path) = &cli.bench_out {
        if let Err(err) = cli.runner.write_bench_json(&figure.id, path) {
            eprintln!("error: cannot write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
    let report = cli.runner.report();
    eprintln!(
        "# {}: {} sweep points on {} thread(s) in {:.2}s (busy {:.2}s)",
        figure.id,
        report.records.len(),
        report.threads,
        started.elapsed().as_secs_f64(),
        report.busy_secs(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_resolves_scale_and_threads() {
        // Serialize with other TFMCC_SCALE-touching tests and pin a clean
        // environment so the flag must win.
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_SCALE");
        let args =
            RunnerArgs::try_parse(["--quick", "--threads", "3"].iter().map(|s| s.to_string()))
                .unwrap();
        let cli = FigureCli::from_runner_args(args);
        assert_eq!(cli.scale, Scale::Quick);
        assert_eq!(cli.runner.threads(), 3);
        assert!(cli.out.is_none() && cli.bench_out.is_none());
    }
}
