//! Router queue disciplines.
//!
//! The TFMCC paper evaluates over drop-tail queues ("to ensure acceptable
//! behavior in the current Internet") and notes that fairness generally
//! improves under RED.  Both are provided: [`QueueDiscipline::DropTail`] and
//! [`QueueDiscipline::Red`] with the classic Floyd/Jacobson RED algorithm.

use std::collections::VecDeque;

use crate::packet::Packet;
use crate::time::SimTime;

/// Configuration of a queue discipline.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueDiscipline {
    /// FIFO queue that drops arrivals once `limit_packets` are queued.
    DropTail {
        /// Maximum number of queued packets (the packet in transmission does
        /// not count against the limit).
        limit_packets: usize,
    },
    /// Random Early Detection.
    Red(RedConfig),
}

impl QueueDiscipline {
    /// A drop-tail queue with the given packet limit.
    pub fn drop_tail(limit_packets: usize) -> Self {
        QueueDiscipline::DropTail { limit_packets }
    }

    /// A RED queue with default parameters scaled to the given hard limit.
    pub fn red(limit_packets: usize) -> Self {
        QueueDiscipline::Red(RedConfig::for_limit(limit_packets))
    }
}

/// RED parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RedConfig {
    /// Minimum average-queue threshold below which no packet is dropped.
    pub min_threshold: f64,
    /// Maximum average-queue threshold above which every packet is dropped.
    pub max_threshold: f64,
    /// Drop probability at the maximum threshold.
    pub max_drop_probability: f64,
    /// Weight of the exponential moving average of the queue length.
    pub queue_weight: f64,
    /// Hard limit on the instantaneous queue length.
    pub limit_packets: usize,
}

impl RedConfig {
    /// Reasonable defaults given a hard queue limit: thresholds at 20 % and
    /// 60 % of the limit, 10 % max drop probability, w_q = 0.002.
    pub fn for_limit(limit_packets: usize) -> Self {
        let limit = limit_packets.max(5) as f64;
        RedConfig {
            min_threshold: limit * 0.2,
            max_threshold: limit * 0.6,
            max_drop_probability: 0.1,
            queue_weight: 0.002,
            limit_packets,
        }
    }
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Packet was accepted and queued.
    Queued,
    /// Packet was dropped because the queue is full.
    DroppedFull,
    /// Packet was dropped by RED's early detection.
    DroppedEarly,
}

/// A router queue instance.
#[derive(Debug)]
pub struct Queue {
    discipline: QueueDiscipline,
    packets: VecDeque<Packet>,
    bytes: u64,
    avg_queue: f64,
    idle_since: Option<SimTime>,
    red_count_since_drop: u64,
}

impl Queue {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        Queue {
            discipline,
            packets: VecDeque::new(),
            bytes: 0,
            avg_queue: 0.0,
            idle_since: Some(SimTime::ZERO),
            red_count_since_drop: 0,
        }
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True for drop-tail queues, whose drop decision depends only on the
    /// instantaneous occupancy — the property the link layer's burst
    /// draining relies on.
    pub fn is_drop_tail(&self) -> bool {
        matches!(self.discipline, QueueDiscipline::DropTail { .. })
    }

    /// Offers a packet to the queue.  `uniform` must be a fresh uniform random
    /// sample in `[0, 1)` (used only by RED).
    pub fn enqueue(&mut self, packet: Packet, now: SimTime, uniform: f64) -> EnqueueResult {
        self.enqueue_offset(packet, now, uniform, 0)
    }

    /// [`Queue::enqueue`] with `offset` phantom occupants counted against
    /// the hard limit: packets the link has burst-drained but whose
    /// transmission has not started yet still hold a queue slot.
    pub fn enqueue_offset(
        &mut self,
        packet: Packet,
        now: SimTime,
        uniform: f64,
        offset: usize,
    ) -> EnqueueResult {
        match &self.discipline {
            QueueDiscipline::DropTail { limit_packets } => {
                if self.packets.len() + offset >= *limit_packets {
                    EnqueueResult::DroppedFull
                } else {
                    self.bytes += u64::from(packet.size);
                    self.packets.push_back(packet);
                    EnqueueResult::Queued
                }
            }
            QueueDiscipline::Red(cfg) => {
                let cfg = cfg.clone();
                self.enqueue_red(packet, now, uniform, &cfg)
            }
        }
    }

    fn enqueue_red(
        &mut self,
        packet: Packet,
        now: SimTime,
        uniform: f64,
        cfg: &RedConfig,
    ) -> EnqueueResult {
        // Update the average queue size, accounting for idle time by decaying
        // the average as if empty slots had been observed.
        let current = self.packets.len() as f64;
        if let Some(idle_start) = self.idle_since.take() {
            // Approximate the number of "small packets" that could have been
            // transmitted while idle; one slot per millisecond is a common
            // simplification that keeps the average responsive after idling.
            let idle = now.saturating_since(idle_start);
            let slots = (idle / 0.001).min(10_000.0);
            self.avg_queue *= (1.0 - cfg.queue_weight).powf(slots);
        }
        self.avg_queue = (1.0 - cfg.queue_weight) * self.avg_queue + cfg.queue_weight * current;

        if self.packets.len() >= cfg.limit_packets {
            self.red_count_since_drop = 0;
            return EnqueueResult::DroppedFull;
        }
        if self.avg_queue >= cfg.max_threshold {
            self.red_count_since_drop = 0;
            return EnqueueResult::DroppedEarly;
        }
        if self.avg_queue > cfg.min_threshold {
            let base = cfg.max_drop_probability * (self.avg_queue - cfg.min_threshold)
                / (cfg.max_threshold - cfg.min_threshold);
            // Spread drops out: probability increases with the count of
            // packets accepted since the last drop.
            let count = self.red_count_since_drop as f64;
            let p = (base / (1.0 - count * base).max(1e-6)).clamp(0.0, 1.0);
            if uniform < p {
                self.red_count_since_drop = 0;
                return EnqueueResult::DroppedEarly;
            }
            self.red_count_since_drop += 1;
        } else {
            self.red_count_since_drop = 0;
        }
        self.bytes += u64::from(packet.size);
        self.packets.push_back(packet);
        EnqueueResult::Queued
    }

    /// Removes the packet at the head of the queue, recording when the queue
    /// goes idle (needed by RED's average).
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let pkt = self.packets.pop_front();
        if let Some(ref p) = pkt {
            self.bytes -= u64::from(p.size);
        }
        if self.packets.is_empty() {
            self.idle_since = Some(now);
        }
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Address, Dest, FlowId, NodeId, Payload, Port};

    fn pkt(size: u32) -> Packet {
        let a = Address::new(NodeId(0), Port(0));
        Packet::new(a, Dest::Unicast(a), size, FlowId(0), Payload::empty())
    }

    #[test]
    fn drop_tail_respects_limit() {
        let mut q = Queue::new(QueueDiscipline::drop_tail(3));
        for i in 0..3 {
            assert_eq!(
                q.enqueue(pkt(100), SimTime::from_secs(i as f64), 0.5),
                EnqueueResult::Queued
            );
        }
        assert_eq!(
            q.enqueue(pkt(100), SimTime::from_secs(3.0), 0.5),
            EnqueueResult::DroppedFull
        );
        assert_eq!(q.len(), 3);
        assert_eq!(q.bytes(), 300);
    }

    #[test]
    fn drop_tail_fifo_order() {
        let mut q = Queue::new(QueueDiscipline::drop_tail(10));
        for size in [100, 200, 300] {
            q.enqueue(pkt(size), SimTime::ZERO, 0.5);
        }
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 100);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 200);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().size, 300);
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn red_accepts_when_average_low() {
        let mut q = Queue::new(QueueDiscipline::red(100));
        // Few packets: average stays below min threshold, nothing dropped.
        for i in 0..5 {
            assert_eq!(
                q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 0.01), 0.99),
                EnqueueResult::Queued
            );
        }
    }

    #[test]
    fn red_drops_under_sustained_load() {
        let cfg = RedConfig {
            min_threshold: 2.0,
            max_threshold: 5.0,
            max_drop_probability: 0.5,
            queue_weight: 0.5, // aggressive averaging so the test converges fast
            limit_packets: 50,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg));
        let mut dropped_early = 0;
        for i in 0..100 {
            let r = q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 0.001), 0.3);
            if r == EnqueueResult::DroppedEarly {
                dropped_early += 1;
            }
        }
        assert!(
            dropped_early > 0,
            "RED should have dropped some packets early"
        );
    }

    #[test]
    fn red_hard_limit_enforced() {
        let cfg = RedConfig {
            min_threshold: 1000.0, // never early-drop
            max_threshold: 2000.0,
            max_drop_probability: 0.1,
            queue_weight: 0.002,
            limit_packets: 4,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg));
        let mut full = 0;
        for _ in 0..10 {
            if q.enqueue(pkt(100), SimTime::ZERO, 0.99) == EnqueueResult::DroppedFull {
                full += 1;
            }
        }
        assert_eq!(q.len(), 4);
        assert_eq!(full, 6);
    }

    #[test]
    fn red_average_decays_while_idle() {
        let cfg = RedConfig {
            min_threshold: 2.0,
            max_threshold: 4.0,
            max_drop_probability: 1.0,
            queue_weight: 0.5,
            limit_packets: 50,
        };
        let mut q = Queue::new(QueueDiscipline::Red(cfg.clone()));
        // Drive the average up.
        for i in 0..20 {
            q.enqueue(pkt(100), SimTime::from_secs(i as f64 * 1e-4), 0.99);
        }
        let avg_before = q.avg_queue;
        // Drain and let it idle a long time; the next enqueue should see a
        // much smaller average.
        while q.dequeue(SimTime::from_secs(0.01)).is_some() {}
        q.enqueue(pkt(100), SimTime::from_secs(10.0), 0.99);
        assert!(q.avg_queue < avg_before * 0.5);
    }
}
