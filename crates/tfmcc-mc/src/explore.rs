//! Generic explicit-state bounded exploration.
//!
//! The explorer is independent of TFMCC: anything implementing [`Model`]
//! (an initial state, enabled actions, a transition function, a state
//! fingerprint and an invariant check) can be explored exhaustively up to
//! the configured limits.  States are deduplicated by fingerprint, so the
//! search visits each distinct state once no matter how many interleavings
//! reach it; on an invariant violation the exact action schedule that
//! reached the bad state is reconstructed for replay.

#[allow(clippy::disallowed_types)]
// tfmcc-lint: allow(D001, reason = "fingerprint dedup set: membership-only, iteration order never escapes, and hashing u64 fingerprints is the hot loop of the explorer")
use std::collections::{HashSet, VecDeque};
use std::rc::Rc;

/// A transition system the explorer can walk.
pub trait Model {
    /// Full system state; cloned once per explored transition.
    type State: Clone;
    /// One schedulable step (deliver a message, advance time, ...).
    type Action: Clone + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;
    /// All actions schedulable from `state`, in a deterministic order.
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;
    /// The successor state reached by taking `action` from `state`.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;
    /// Deterministic fingerprint used for state deduplication.
    fn fingerprint(&self, state: &Self::State) -> u64;
    /// Checks every invariant; `Err((invariant, message))` on violation.
    fn check(&self, state: &Self::State) -> Result<(), (String, String)>;
}

/// Exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first: low memory, finds deep violations fast.
    Dfs,
    /// Breadth-first: finds a *shortest* schedule to any violation.
    Bfs,
}

/// Exploration bounds.  Exceeding either marks the outcome truncated rather
/// than failing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of distinct states to expand.
    pub max_states: usize,
    /// Maximum schedule depth to descend to.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        }
    }
}

/// An invariant violation, with the schedule that reproduces it from the
/// initial state.
#[derive(Debug, Clone)]
pub struct Violation<A> {
    /// Name of the violated invariant.
    pub invariant: String,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The action sequence from the initial state to the violating state.
    pub schedule: Vec<A>,
}

/// Result of an exploration run.
#[derive(Debug, Clone)]
pub struct CheckOutcome<A> {
    /// Distinct states visited (after fingerprint deduplication).
    pub states_explored: usize,
    /// Successor states skipped because their fingerprint was already seen.
    pub dedup_hits: usize,
    /// Deepest schedule reached.
    pub max_depth_seen: usize,
    /// True when a limit cut the exploration short (the state space was NOT
    /// exhausted).
    pub truncated: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation<A>>,
}

/// Reverse-linked schedule node, shared between sibling branches so the
/// frontier costs O(1) memory per entry instead of O(depth).
struct PathNode<A> {
    action: A,
    parent: Option<Rc<PathNode<A>>>,
}

fn unwind<A: Clone>(mut node: Option<&Rc<PathNode<A>>>) -> Vec<A> {
    let mut actions = Vec::new();
    while let Some(n) = node {
        actions.push(n.action.clone());
        node = n.parent.as_ref();
    }
    actions.reverse();
    actions
}

/// Explores `model` from its initial state until the state space is
/// exhausted, a limit is hit, or an invariant is violated.
pub fn explore<M: Model>(model: &M, strategy: Strategy, limits: Limits) -> CheckOutcome<M::Action> {
    let mut outcome = CheckOutcome {
        states_explored: 0,
        dedup_hits: 0,
        max_depth_seen: 0,
        truncated: false,
        violation: None,
    };

    let initial = model.initial();
    if let Err((invariant, message)) = model.check(&initial) {
        outcome.violation = Some(Violation {
            invariant,
            message,
            schedule: Vec::new(),
        });
        return outcome;
    }

    #[allow(clippy::disallowed_types)]
    // tfmcc-lint: allow(D001, reason = "membership-only probe set of u64 fingerprints; never iterated, so ordering cannot leak into exploration results")
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(model.fingerprint(&initial));
    outcome.states_explored = 1;

    type Entry<M> = (
        <M as Model>::State,
        usize,
        Option<Rc<PathNode<<M as Model>::Action>>>,
    );
    let mut frontier: VecDeque<Entry<M>> = VecDeque::new();
    frontier.push_back((initial, 0, None));

    while let Some((state, depth, path)) = match strategy {
        Strategy::Dfs => frontier.pop_back(),
        Strategy::Bfs => frontier.pop_front(),
    } {
        if depth >= limits.max_depth {
            outcome.truncated = true;
            continue;
        }
        for action in model.enabled(&state) {
            let next = model.apply(&state, &action);
            if !visited.insert(model.fingerprint(&next)) {
                outcome.dedup_hits += 1;
                continue;
            }
            let node = Rc::new(PathNode {
                action,
                parent: path.clone(),
            });
            if let Err((invariant, message)) = model.check(&next) {
                outcome.violation = Some(Violation {
                    invariant,
                    message,
                    schedule: unwind(Some(&node)),
                });
                return outcome;
            }
            outcome.states_explored += 1;
            outcome.max_depth_seen = outcome.max_depth_seen.max(depth + 1);
            if outcome.states_explored >= limits.max_states {
                outcome.truncated = true;
                return outcome;
            }
            frontier.push_back((next, depth + 1, Some(node)));
        }
    }
    outcome
}

/// Replays a recorded schedule from the initial state, checking invariants
/// after every step.
///
/// Errors when a step is not enabled (the model drifted from the recording)
/// or when an invariant is violated; the error message names the invariant,
/// so regression tests can assert a quarantined counterexample still fails
/// the same way.
pub fn run_schedule<M: Model>(model: &M, schedule: &[M::Action]) -> Result<M::State, String>
where
    M::Action: PartialEq,
{
    let mut state = model.initial();
    if let Err((invariant, message)) = model.check(&state) {
        return Err(format!(
            "invariant {invariant} violated in the initial state: {message}"
        ));
    }
    for (step, action) in schedule.iter().enumerate() {
        if !model.enabled(&state).contains(action) {
            return Err(format!("schedule step {step} ({action:?}) is not enabled"));
        }
        state = model.apply(&state, action);
        if let Err((invariant, message)) = model.check(&state) {
            return Err(format!(
                "invariant {invariant} violated after step {step} ({action:?}): {message}"
            ));
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: a pair of counters, each incrementable up to `limit`.
    /// The state space is the (limit+1)² grid — every cell reachable by many
    /// interleavings, so dedup is essential and the counts are predictable.
    struct Grid {
        limit: u32,
        forbidden: Option<(u32, u32)>,
    }

    impl Model for Grid {
        type State = (u32, u32);
        type Action = u8; // 0 = increment x, 1 = increment y

        fn initial(&self) -> (u32, u32) {
            (0, 0)
        }
        fn enabled(&self, &(x, y): &(u32, u32)) -> Vec<u8> {
            let mut acts = Vec::new();
            if x < self.limit {
                acts.push(0);
            }
            if y < self.limit {
                acts.push(1);
            }
            acts
        }
        fn apply(&self, &(x, y): &(u32, u32), action: &u8) -> (u32, u32) {
            match action {
                0 => (x + 1, y),
                _ => (x, y + 1),
            }
        }
        fn fingerprint(&self, &(x, y): &(u32, u32)) -> u64 {
            (u64::from(x) << 32) | u64::from(y)
        }
        fn check(&self, state: &(u32, u32)) -> Result<(), (String, String)> {
            if Some(*state) == self.forbidden {
                Err(("forbidden".into(), format!("reached {state:?}")))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn exhausts_the_grid_exactly_once_per_state() {
        let model = Grid {
            limit: 9,
            forbidden: None,
        };
        for strategy in [Strategy::Dfs, Strategy::Bfs] {
            let out = explore(&model, strategy, Limits::default());
            assert!(out.violation.is_none());
            assert!(!out.truncated);
            assert_eq!(out.states_explored, 100, "10x10 grid");
            assert_eq!(out.max_depth_seen, 18, "corner is 9+9 steps away");
            assert!(out.dedup_hits > 0, "many interleavings merge");
        }
    }

    #[test]
    fn bfs_finds_a_shortest_schedule() {
        let model = Grid {
            limit: 9,
            forbidden: Some((2, 1)),
        };
        let out = explore(&model, Strategy::Bfs, Limits::default());
        let violation = out.violation.expect("must reach (2,1)");
        assert_eq!(violation.invariant, "forbidden");
        assert_eq!(violation.schedule.len(), 3);
        // The schedule must actually reproduce the violation.
        let err = run_schedule(&model, &violation.schedule).unwrap_err();
        assert!(err.contains("forbidden"), "{err}");
    }

    #[test]
    fn dfs_violation_schedules_replay_too() {
        let model = Grid {
            limit: 9,
            forbidden: Some((5, 5)),
        };
        let out = explore(&model, Strategy::Dfs, Limits::default());
        let violation = out.violation.expect("must reach (5,5)");
        let err = run_schedule(&model, &violation.schedule).unwrap_err();
        assert!(err.contains("forbidden"), "{err}");
    }

    #[test]
    fn limits_truncate_instead_of_failing() {
        let model = Grid {
            limit: 1000,
            forbidden: None,
        };
        let out = explore(
            &model,
            Strategy::Bfs,
            Limits {
                max_states: 50,
                max_depth: usize::MAX,
            },
        );
        assert!(out.truncated);
        assert_eq!(out.states_explored, 50);
        let out = explore(
            &model,
            Strategy::Bfs,
            Limits {
                max_states: usize::MAX,
                max_depth: 3,
            },
        );
        assert!(out.truncated);
        assert_eq!(out.max_depth_seen, 3);
    }

    #[test]
    fn run_schedule_rejects_disabled_actions() {
        let model = Grid {
            limit: 1,
            forbidden: None,
        };
        // Three increments of x exceed the limit: the third is not enabled.
        let err = run_schedule(&model, &[0, 0, 0]).unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
        assert!(run_schedule(&model, &[0, 1]).is_ok());
    }
}
