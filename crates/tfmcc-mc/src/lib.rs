//! Bounded model checking for the TFMCC protocol core.
//!
//! This crate drives the *real* `tfmcc-proto` sender and receiver state
//! machines — via the [`SenderStep`]/[`ReceiverStep`] seam — through every
//! interleaving of an adversarial network that may drop, duplicate and
//! reorder control packets, fire feedback timers in any legal order, and
//! make receivers leave at any moment.  Exploration is explicit-state with
//! fingerprint deduplication; nondeterminism is budgeted (so the state
//! space is finite) and every invariant violation comes with the exact
//! action schedule that reproduces it.
//!
//! The pieces:
//!
//! * [`explore`](mod@explore) — the generic DFS/BFS explorer over a
//!   [`Model`], plus deterministic schedule replay;
//! * [`hasher`] — a portable FNV-1a [`std::hash::Hasher`] for state
//!   fingerprints;
//! * [`world`] — the TFMCC model itself: [`McWorld`], the [`Action`]
//!   alphabet, budget accounting and the named [`McConfig`] presets;
//! * [`invariants`] — the four shipped safety properties (no rate deadlock
//!   after CLR loss, feedback-round termination, incremental/reference
//!   aggregator agreement, max-RTT consistency under report loss);
//! * [`replay`] — the `tfmcc-replay-v1` counterexample file format.
//!
//! ```
//! use tfmcc_mc::{explore, Limits, McConfig, McModel, Strategy};
//!
//! let model = McModel::new(McConfig::preset("smoke2").unwrap());
//! let out = explore(&model, Strategy::Bfs, Limits { max_states: 5_000, ..Limits::default() });
//! assert!(out.violation.is_none());
//! assert!(out.states_explored > 100);
//! ```
//!
//! [`SenderStep`]: tfmcc_proto::step::SenderStep
//! [`ReceiverStep`]: tfmcc_proto::step::ReceiverStep

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explore;
pub mod hasher;
pub mod invariants;
pub mod replay;
pub mod world;

pub use crate::explore::{explore, run_schedule, CheckOutcome, Limits, Model, Strategy, Violation};
pub use crate::hasher::Fnv1a;
pub use crate::invariants::{default_invariants, Invariant};
pub use crate::replay::{f64_from_bits_hex, f64_to_bits_hex, Replay, FORMAT};
pub use crate::world::{Action, McConfig, McModel, McWorld, NetMsg};
