//! Analytic models underpinning TFMCC (Widmer & Handley, SIGCOMM 2001).
//!
//! This crate is pure math: no I/O, no clocks, no randomness.  It provides
//!
//! * the TCP throughput models used as control equations — the full model of
//!   Padhye et al. (paper Eq. 1) and the simplified "square-root" model of
//!   Mathis et al. (paper Eq. 4) — together with their inverses, which the
//!   protocol needs to initialise the loss history (paper Appendix B);
//! * the loss-events-per-RTT curve from paper Appendix A (Figure 17);
//! * closed-form/numerically-integrated expectations for exponential feedback
//!   suppression (Figure 4);
//! * order statistics of exponential and gamma distributed loss intervals,
//!   used to analyse the loss-path-multiplicity throughput degradation
//!   (Section 3, Figure 7);
//! * quantized aggregate-population models (rate distributions, CLR-candidacy
//!   probabilities, expected suppressed responses) for the hybrid
//!   packet/fluid simulation tier;
//! * small special-function helpers (log-gamma, regularized incomplete gamma)
//!   required by the above.
//!
//! All rates are in bytes per second, all times in seconds and all packet
//! sizes in bytes unless a function documents otherwise.

// Enforced by tfmcc-lint rule U001: pure math/protocol logic, no unsafe.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod feedback_expectation;
pub mod order_stats;
pub mod population;
pub mod special;
pub mod throughput;

pub use feedback_expectation::{expected_responses, expected_responses_grid, FeedbackModel};
pub use order_stats::{
    expected_min_exponential, expected_min_gamma, expected_min_uniform, scaling_degradation,
};
pub use population::{
    clr_candidacy_probability, expected_population_responses, rate_cdf, Dist, PopulationProfile,
    RateBin,
};
pub use throughput::{
    loss_events_per_rtt, mathis_loss_rate, mathis_throughput, padhye_loss_rate, padhye_throughput,
    TcpModel,
};
