//! Benchmarks regenerating the responsiveness and startup figures (paper
//! Figures 11–16, 20, 21) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tfmcc_experiments::{responsiveness_figs, startup_figs, Scale, SweepRunner};

fn bench_responsiveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("responsiveness_figures");
    group.sample_size(10);
    group.bench_function("fig11_loss_responsiveness_quick", |b| {
        b.iter(|| {
            black_box(responsiveness_figs::fig11_loss_responsiveness(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig21_flow_doubling_quick", |b| {
        b.iter(|| {
            black_box(responsiveness_figs::fig21_flow_doubling(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.finish();
}

fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("startup_figures");
    group.sample_size(10);
    group.bench_function("fig12_rtt_measurements_quick", |b| {
        b.iter(|| {
            black_box(startup_figs::fig12_rtt_measurements(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig14_slowstart_quick", |b| {
        b.iter(|| {
            black_box(startup_figs::fig14_slowstart(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig15_late_join_quick", |b| {
        b.iter(|| {
            black_box(startup_figs::fig15_late_join(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_responsiveness, bench_startup);
criterion_main!(benches);
