//! Protocol message types exchanged between the TFMCC sender and receivers.
//!
//! These are plain data structures — the sans-I/O core produces and consumes
//! them; adapters (the netsim agents in `tfmcc-agents`, the UDP transport in
//! `tfmcc-transport`) decide how they travel.

use serde::{Deserialize, Serialize};

/// Identifier of a receiver within one TFMCC session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReceiverId(pub u64);

/// Echo of a receiver report carried in a data packet so the receiver can
/// measure its RTT (paper Section 2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttEcho {
    /// The receiver whose report is echoed.
    pub receiver: ReceiverId,
    /// The receiver's timestamp copied from its feedback packet (receiver
    /// clock).
    pub echo_timestamp: f64,
    /// Time the report spent at the sender before being echoed, which the
    /// receiver subtracts from its RTT sample.
    pub echo_delay: f64,
}

/// Echo of the lowest-rate feedback received so far in the current feedback
/// round, used by receivers to suppress their own feedback (paper
/// Section 2.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuppressionEcho {
    /// The receiver whose feedback is echoed.
    pub receiver: ReceiverId,
    /// The calculated rate it reported, in bytes/second.
    pub rate: f64,
}

/// Header of a TFMCC data packet (multicast from the sender to the group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Sequence number, consecutive per session.
    pub seqno: u64,
    /// Sender timestamp (sender clock, seconds).
    pub timestamp: f64,
    /// The sender's current sending rate in bytes/second.
    pub current_rate: f64,
    /// The maximum RTT over all receivers the sender knows of, used to size
    /// the feedback timers.
    pub max_rtt: f64,
    /// Current feedback round number.
    pub feedback_round: u64,
    /// True while the sender is in slowstart.
    pub slowstart: bool,
    /// The current limiting receiver, if any.
    pub clr: Option<ReceiverId>,
    /// Echo of one receiver report for RTT measurement.
    pub rtt_echo: Option<RttEcho>,
    /// Echo of the lowest-rate feedback of the current round for suppression.
    pub suppression: Option<SuppressionEcho>,
    /// Payload size in bytes (the header itself is considered part of the
    /// packet size for rate computations).
    pub size: u32,
}

/// A receiver report (unicast from a receiver to the sender).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackPacket {
    /// The reporting receiver.
    pub receiver: ReceiverId,
    /// Receiver timestamp (receiver clock, seconds) at the time of sending,
    /// echoed back by the sender for RTT measurement.
    pub timestamp: f64,
    /// Timestamp of the most recent data packet received (sender clock),
    /// echoed so the sender can make its own RTT measurement
    /// (paper Section 2.4.4).
    pub echo_timestamp: f64,
    /// Delay between receiving that data packet and sending this report.
    pub echo_delay: f64,
    /// The rate this receiver calculated from the control equation, in
    /// bytes/second (`f64::INFINITY` while no loss has been observed).
    pub calculated_rate: f64,
    /// The receiver's current loss event rate estimate.
    pub loss_event_rate: f64,
    /// The receiver's measured receive rate in bytes/second (used during
    /// slowstart).
    pub receive_rate: f64,
    /// The receiver's RTT estimate in seconds.
    pub rtt: f64,
    /// True once the receiver has made at least one real RTT measurement;
    /// false while it is still using the configured initial RTT.
    pub has_rtt_measurement: bool,
    /// The feedback round this report belongs to.
    pub feedback_round: u64,
    /// True if the receiver is announcing that it is leaving the session.
    pub leaving: bool,
}

impl FeedbackPacket {
    /// Size of a feedback packet on the wire, in bytes (fixed; reports are
    /// small compared to data packets).
    pub const WIRE_SIZE: u32 = 64;
}

/// A population-weighted receiver report: one synthetic report standing for
/// `weight` receivers of a fluid population bin (hybrid packet/fluid tier).
///
/// The embedded [`FeedbackPacket`] carries the bin's quantile rate/RTT under
/// a synthetic [`ReceiverId`]; the sender treats it exactly like an ordinary
/// report except that the aggregator entry carries the bin's weight, so
/// [`population`](crate::aggregator::FeedbackAggregator::population) reflects
/// the receivers the session actually stands for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationReport {
    /// The bin's report.
    pub feedback: FeedbackPacket,
    /// Number of receivers the report stands for (≥ 1).
    pub weight: u64,
}

impl PopulationReport {
    /// Wire size: a feedback packet plus the 8-byte weight.
    pub const WIRE_SIZE: u32 = FeedbackPacket::WIRE_SIZE + 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_fields_round_trip_through_clone() {
        let d = DataPacket {
            seqno: 42,
            timestamp: 1.5,
            current_rate: 125_000.0,
            max_rtt: 0.5,
            feedback_round: 3,
            slowstart: true,
            clr: Some(ReceiverId(7)),
            rtt_echo: Some(RttEcho {
                receiver: ReceiverId(7),
                echo_timestamp: 1.0,
                echo_delay: 0.01,
            }),
            suppression: Some(SuppressionEcho {
                receiver: ReceiverId(9),
                rate: 100_000.0,
            }),
            size: 1000,
        };
        let e = d.clone();
        assert_eq!(d, e);
    }

    #[test]
    fn feedback_packet_defaults_make_sense() {
        let f = FeedbackPacket {
            receiver: ReceiverId(1),
            timestamp: 2.0,
            echo_timestamp: 1.9,
            echo_delay: 0.001,
            calculated_rate: f64::INFINITY,
            loss_event_rate: 0.0,
            receive_rate: 50_000.0,
            rtt: 0.5,
            has_rtt_measurement: false,
            feedback_round: 0,
            leaving: false,
        };
        assert!(f.calculated_rate.is_infinite());
        const { assert!(FeedbackPacket::WIRE_SIZE < 200) };
    }
}
