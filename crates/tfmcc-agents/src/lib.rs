//! netsim adapters for the TFMCC protocol core.
//!
//! [`TfmccSenderAgent`] and [`TfmccReceiverAgent`] bind the sans-I/O state
//! machines of `tfmcc-proto` to the discrete-event simulator: data packets
//! are multicast along the group's distribution tree, receiver reports travel
//! back as unicast packets, and the receivers' single feedback timer is
//! mapped onto simulator timers.  [`session::TfmccSession`] wires a whole
//! session (one sender, many receivers, optional staggered joins and leaves)
//! in one call — the building block of every experiment in
//! `tfmcc-experiments` — and [`manager::SessionManager`] orchestrates **many
//! independent sessions in one simulation** (per-session group/port/flow
//! allocation, staggered starts, per-session reports and cross-session
//! fairness metrics), the substrate of the inter-TFMCC experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manager;
pub mod receiver_agent;
pub mod sender_agent;
pub mod session;

pub use manager::{SessionId, SessionManager, SessionReport, SessionSpec, SessionSummary};
pub use receiver_agent::TfmccReceiverAgent;
pub use sender_agent::TfmccSenderAgent;
pub use session::{ReceiverSpec, TfmccSession, TfmccSessionBuilder};
