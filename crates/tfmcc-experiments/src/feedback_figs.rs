//! Figures 1–6: the feedback suppression mechanism in isolation.
//!
//! Every figure runs its independent evaluation points (bias methods,
//! cancellation strategies, receiver counts) through the sweep executor;
//! Monte-Carlo points derive their seeds from the sweep, so results are
//! identical for any thread count.

use tfmcc_feedback::round::{
    mean_first_response, mean_quality_absolute, mean_responses, FeedbackRound,
};
use tfmcc_feedback::{timer_cdf, BiasMethod, FeedbackPlanner};
use tfmcc_model::feedback_expectation::expected_responses;
use tfmcc_proto::config::TfmccConfig;
use tfmcc_runner::{Sweep, SweepRunner};

use crate::output::{Figure, Series};
use crate::scale::Scale;

fn planner(method: BiasMethod, alpha: f64) -> FeedbackPlanner {
    let mut p = FeedbackPlanner::from_config(&TfmccConfig::default());
    p.method = method;
    p.cancel_alpha = alpha;
    p
}

/// TFMCC's window (in network-delay units): T = 6 delays, suppression
/// interval T' = 4.
const WINDOW: f64 = 6.0;
const DELAY: f64 = 1.0;

/// Figure 1: CDF of the feedback time for the different biasing methods.
pub fn fig01_bias_cdf(runner: &SweepRunner, _scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "fig01",
        "Different feedback biasing methods",
        "feedback time (RTTs)",
        "cumulative probability",
    );
    // The paper plots a moderately congested receiver (rate ratio 0.7).
    let ratio = 0.7;
    let methods = vec![
        ("exponential", BiasMethod::Unbiased),
        ("offset", BiasMethod::ModifiedOffset),
        ("modified N", BiasMethod::ModifiedN),
    ];
    let sweep = Sweep::new("fig01", 1, methods);
    for series in runner.run(&sweep, |pt| {
        let (name, method) = *pt.value;
        let cdf = timer_cdf(&planner(method, 0.1), ratio, 4.0, 200);
        Series::new(name, cdf.iter().map(|p| (p.time, p.probability)).collect())
    }) {
        fig.push_series(series);
    }
    let exp_early = fig.series("exponential").unwrap().points[25].1;
    let modn_early = fig.series("modified N").unwrap().points[25].1;
    fig.note(format!(
        "modified-N raises early-response probability ({modn_early:.4}) above plain exponential ({exp_early:.4}); offset shifts the curve right"
    ));
    fig
}

/// Figure 2: time–value distribution of one feedback round, offset vs normal.
pub fn fig02_time_value(runner: &SweepRunner, scale: Scale) -> Figure {
    let n = scale.pick(60, 120);
    let mut fig = Figure::new(
        "fig02",
        "Time-value distribution of feedback",
        "feedback time (RTTs)",
        "feedback value (rate ratio)",
    );
    let methods = vec![
        ("normal sent", BiasMethod::Unbiased),
        ("offset sent", BiasMethod::ModifiedOffset),
    ];
    let sweep = Sweep::new("fig02", 2, methods);
    for (series, note) in runner.run(&sweep, |pt| {
        let (name, method) = *pt.value;
        let round = FeedbackRound::new(planner(method, 1.0), WINDOW, DELAY);
        let outcome = &round.simulate_uniform(n, 1, 2)[0];
        let note = format!(
            "{name}: {} responses, best value {:.3} vs true minimum {:.3}",
            outcome.responses.len(),
            outcome.best_reported.unwrap_or(f64::NAN),
            outcome.true_minimum
        );
        (Series::new(name, outcome.responses.clone()), note)
    }) {
        fig.push_series(series);
        fig.note(note);
    }
    fig
}

/// Figure 3: number of responses in the worst case for the cancellation
/// strategies (alpha = 1, 0.1, 0).
pub fn fig03_cancellation(runner: &SweepRunner, scale: Scale) -> Figure {
    let ns: Vec<usize> = scale.pick(vec![1, 10, 100, 1000], vec![1, 10, 100, 1000, 10_000]);
    let runs = scale.pick(3, 10);
    let mut fig = Figure::new(
        "fig03",
        "Different feedback cancellation methods",
        "number of receivers",
        "number of responses",
    );
    let strategies = [
        ("all suppressed (alpha=1)", 1.0),
        ("10% lower suppressed (alpha=0.1)", 0.1),
        ("higher suppressed (alpha=0)", 0.0),
    ];
    // One sweep point per (strategy, receiver count); the worst case of
    // Figure 3 is all receivers suddenly congested with similar (but not
    // identical) low rates.
    let points: Vec<(f64, usize)> = strategies
        .iter()
        .flat_map(|&(_, alpha)| ns.iter().map(move |&n| (alpha, n)))
        .collect();
    let sweep = Sweep::new("fig03", 42, points);
    let means = runner.run(&sweep, |pt| {
        let (alpha, n) = *pt.value;
        let round = FeedbackRound::new(planner(BiasMethod::ModifiedOffset, alpha), WINDOW, DELAY);
        let outcomes = round.simulate_uniform_range(n, runs, 0.0, 0.2, pt.seed);
        mean_responses(&outcomes)
    });
    for (s, chunk) in strategies.iter().zip(means.chunks(ns.len())) {
        let points: Vec<(f64, f64)> = ns
            .iter()
            .zip(chunk)
            .map(|(&n, &mean)| (n as f64, mean))
            .collect();
        fig.push_series(Series::new(s.0, points));
    }
    let a1 = fig
        .series("all suppressed (alpha=1)")
        .unwrap()
        .last_y()
        .unwrap_or(0.0);
    let a0 = fig
        .series("higher suppressed (alpha=0)")
        .unwrap()
        .last_y()
        .unwrap_or(0.0);
    fig.note(format!(
        "at the largest receiver set: alpha=1 -> {a1:.1} responses, alpha=0 -> {a0:.1}; alpha=0.1 sits close to alpha=1 (paper: only marginally more feedback)"
    ));
    fig
}

/// Figure 4: expected number of feedback messages vs T' and n (closed form).
pub fn fig04_expected_feedback(runner: &SweepRunner, scale: Scale) -> Figure {
    let ns: Vec<u64> = scale.pick(
        vec![1, 10, 100, 1000],
        vec![1, 3, 10, 30, 100, 300, 1000, 3000, 10_000, 100_000],
    );
    let mut fig = Figure::new(
        "fig04",
        "Expected number of feedback messages",
        "number of receivers",
        "number of responses",
    );
    let sweep = Sweep::new("fig04", 4, vec![2.0, 3.0, 4.0, 5.0, 6.0]);
    for series in runner.run(&sweep, |pt| {
        let t = *pt.value;
        let points: Vec<(f64, f64)> = ns
            .iter()
            .map(|&n| (n as f64, expected_responses(n, 10_000.0, t, 1.0)))
            .collect();
        Series::new(format!("T'={t} RTTs"), points)
    }) {
        fig.push_series(series);
    }
    let at4 = fig.series("T'=4 RTTs").unwrap();
    fig.note(format!(
        "T'=4 keeps the expectation at {:.1} responses for the largest n (paper: a handful for n up to two orders below N)",
        at4.last_y().unwrap_or(0.0)
    ));
    fig
}

/// Figure 5: mean response time vs receiver count for the biasing methods.
pub fn fig05_response_time(runner: &SweepRunner, scale: Scale) -> Figure {
    run_bias_comparison(
        runner,
        scale,
        "fig05",
        "Comparison of methods to bias feedback (response time)",
        "response time (RTTs)",
        mean_first_response,
    )
}

/// Figure 6: quality of the reported rate vs receiver count.
pub fn fig06_feedback_quality(runner: &SweepRunner, scale: Scale) -> Figure {
    let mut fig = run_bias_comparison(
        runner,
        scale,
        "fig06",
        "Comparison of methods to bias feedback (quality of reported rate)",
        "quality of reported rate",
        mean_quality_absolute,
    );
    let unbiased = fig
        .series("unbiased exponential")
        .unwrap()
        .last_y()
        .unwrap_or(0.0);
    let modified = fig
        .series("modified offset")
        .unwrap()
        .last_y()
        .unwrap_or(0.0);
    fig.note(format!(
        "largest n: unbiased reports {unbiased:.3} above the true minimum, modified offset {modified:.3} (paper: ~0.2 vs a few percent)"
    ));
    fig
}

fn run_bias_comparison(
    runner: &SweepRunner,
    scale: Scale,
    id: &str,
    title: &str,
    y_label: &str,
    metric: fn(&[tfmcc_feedback::RoundOutcome]) -> f64,
) -> Figure {
    let ns: Vec<usize> = scale.pick(vec![1, 10, 100, 1000], vec![1, 10, 100, 1000, 10_000]);
    let runs = scale.pick(5, 30);
    let mut fig = Figure::new(id, title, "number of receivers", y_label);
    let methods = [
        ("unbiased exponential", BiasMethod::Unbiased),
        ("basic offset", BiasMethod::BasicOffset),
        ("modified offset", BiasMethod::ModifiedOffset),
    ];
    let points: Vec<(BiasMethod, usize)> = methods
        .iter()
        .flat_map(|&(_, method)| ns.iter().map(move |&n| (method, n)))
        .collect();
    let sweep = Sweep::new(id, 7, points);
    let values = runner.run(&sweep, |pt| {
        let (method, n) = *pt.value;
        let round = FeedbackRound::new(planner(method, 1.0), WINDOW, DELAY);
        metric(&round.simulate_uniform(n, runs, pt.seed))
    });
    for (m, chunk) in methods.iter().zip(values.chunks(ns.len())) {
        let points: Vec<(f64, f64)> = ns.iter().zip(chunk).map(|(&n, &v)| (n as f64, v)).collect();
        fig.push_series(Series::new(m.0, points));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> SweepRunner {
        SweepRunner::new(2)
    }

    #[test]
    fn fig01_cdfs_are_valid_distributions() {
        let fig = fig01_bias_cdf(&runner(), Scale::Quick);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert!((s.last_y().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig03_alpha_one_stays_near_constant() {
        let fig = fig03_cancellation(&runner(), Scale::Quick);
        let strict = fig.series("all suppressed (alpha=1)").unwrap();
        // Paper: with alpha=1 the number of responses stays roughly constant
        // in n (no implosion).
        let max = strict.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        assert!(max < 30.0, "alpha=1 responses grew to {max}");
        // alpha=0 produces at least as many responses as alpha=1 at large n.
        let lenient = fig.series("higher suppressed (alpha=0)").unwrap();
        assert!(lenient.last_y().unwrap() >= strict.last_y().unwrap() - 1.0);
    }

    #[test]
    fn fig04_larger_window_fewer_responses() {
        let fig = fig04_expected_feedback(&runner(), Scale::Quick);
        let t2 = fig.series("T'=2 RTTs").unwrap().last_y().unwrap();
        let t6 = fig.series("T'=6 RTTs").unwrap().last_y().unwrap();
        assert!(t6 < t2);
    }

    #[test]
    fn fig05_and_fig06_show_the_bias_advantage() {
        let f5 = fig05_response_time(&runner(), Scale::Quick);
        for s in &f5.series {
            // Response time decreases (roughly) with n.
            assert!(s.points.first().unwrap().1 >= s.points.last().unwrap().1 - 0.5);
        }
        let f6 = fig06_feedback_quality(&runner(), Scale::Quick);
        let unbiased = f6.series("unbiased exponential").unwrap().last_y().unwrap();
        let modified = f6.series("modified offset").unwrap().last_y().unwrap();
        assert!(modified <= unbiased + 1e-9);
    }

    #[test]
    fn fig02_has_responses_for_both_methods() {
        let fig = fig02_time_value(&runner(), Scale::Quick);
        for s in &fig.series {
            assert!(!s.points.is_empty());
        }
    }

    #[test]
    fn figures_are_thread_count_invariant() {
        for (a, b) in [
            (
                fig03_cancellation(&SweepRunner::new(1), Scale::Quick),
                fig03_cancellation(&SweepRunner::new(8), Scale::Quick),
            ),
            (
                fig05_response_time(&SweepRunner::new(1), Scale::Quick),
                fig05_response_time(&SweepRunner::new(8), Scale::Quick),
            ),
        ] {
            assert_eq!(a.to_json().render(), b.to_json().render());
        }
    }
}
