//! Experiment harness reproducing every figure of the TFMCC paper.
//!
//! Each module covers one family of figures and exposes
//! `run(runner, scale)` functions returning a [`output::Figure`] — a set of
//! named columns plus summary lines — which the per-figure binaries in
//! `src/bin/` print as CSV (and, with `--out`, write as deterministic JSON).
//! [`scale::Scale`] lets the same code run at paper scale (full receiver
//! counts and durations) or at a reduced scale suitable for tests and
//! Criterion benches; the [`tfmcc_runner::SweepRunner`] argument shards each
//! figure's independent simulation points across worker threads with
//! deterministic per-point seeds, so results are byte-identical for any
//! `--threads N`.
//!
//! | Figures | Module |
//! |---------|--------|
//! | 1–6 (feedback suppression)            | [`feedback_figs`] |
//! | 7, 17 (scaling, loss events per RTT)  | [`scaling_figs`] |
//! | 9, 10, 18, 19 (fairness)              | [`fairness_figs`] |
//! | 11, 13, 20, 21 (responsiveness)       | [`responsiveness_figs`] |
//! | 12, 14, 15, 16 (startup, late join)   | [`startup_figs`] |
//! | 22 (receiver churn, beyond the paper) | [`churn_figs`] |
//! | 23 (inter-TFMCC fairness, beyond the paper) | [`intersession_figs`] |
//! | 24 (cross-protocol fairness matrix over AQM, beyond the paper) | [`fairness_matrix`] |
//! | worst-case annealing search (beyond the paper) | [`scenario_search`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn_figs;
pub mod cli;
pub mod event_bench;
pub mod fairness_figs;
pub mod fairness_matrix;
pub mod fanout_bench;
pub mod feedback_bench;
pub mod feedback_figs;
pub mod intersession_figs;
pub mod output;
pub mod responsiveness_figs;
pub mod scale;
pub mod scaling_figs;
pub mod scenario_search;
pub mod startup_figs;
pub mod sweeps;

pub use output::{Figure, Series};
pub use scale::Scale;
pub use tfmcc_runner::SweepRunner;
