//! netsim adapters for the TFMCC protocol core.
//!
//! [`TfmccSenderAgent`] and [`TfmccReceiverAgent`] bind the sans-I/O state
//! machines of `tfmcc-proto` to the discrete-event simulator: data packets
//! are multicast along the group's distribution tree, receiver reports travel
//! back as unicast packets, and the receivers' single feedback timer is
//! mapped onto simulator timers.  [`session::TfmccSession`] wires a whole
//! session (one sender, many receivers, optional staggered joins and leaves)
//! in one call — the building block of every experiment in
//! `tfmcc-experiments` — and [`manager::SessionManager`] orchestrates **many
//! independent sessions in one simulation** (per-session group/port/flow
//! allocation, staggered starts, per-session reports and cross-session
//! fairness metrics), the substrate of the inter-TFMCC experiments.
//!
//! Receiver populations are specified through the unified
//! [`PopulationSpec`] surface: packet-level receivers run exact per-receiver
//! agents, while [`population::FluidPopulationAgent`] stands in for entire
//! *fluid* populations — `(count, loss distribution, RTT distribution)`
//! aggregates whose feedback is computed analytically and injected as
//! population-weighted reports — which is what makes single sessions of 10⁶
//! receivers tractable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manager;
pub mod population;
pub mod receiver_agent;
pub mod sender_agent;
pub mod session;

pub use manager::{SessionId, SessionManager, SessionReport, SessionSpec, SessionSummary};
pub use population::{FluidPopulationAgent, FluidSpec, PopulationSpec};
pub use receiver_agent::TfmccReceiverAgent;
pub use sender_agent::TfmccSenderAgent;
pub use session::{ReceiverSpec, TfmccSession, TfmccSessionBuilder};
