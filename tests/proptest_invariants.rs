//! Cross-crate property-based tests on core protocol invariants.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use netsim::packet::{FlowId, GroupId, Port};
use netsim::sim::Simulator;
use tfmcc::agents::{PopulationSpec, ReceiverSpec, SessionManager, SessionSpec};
use tfmcc::model::throughput::{mathis_loss_rate, mathis_throughput, padhye_throughput};
use tfmcc::proto::config::TfmccConfig;
use tfmcc::proto::feedback::FeedbackPlanner;
use tfmcc::proto::loss::LossHistory;
use tfmcc::proto::rtt::RttEstimator;

proptest! {
    /// The control equation is monotone: more loss or more delay never yields
    /// a higher rate.
    #[test]
    fn control_equation_is_monotone(
        p1 in 1e-6f64..0.5,
        dp in 1e-6f64..0.4,
        rtt in 0.001f64..2.0,
        drtt in 0.001f64..2.0,
    ) {
        let base = padhye_throughput(1000.0, rtt, p1);
        prop_assert!(padhye_throughput(1000.0, rtt, (p1 + dp).min(1.0)) <= base + 1e-9);
        prop_assert!(padhye_throughput(1000.0, rtt + drtt, p1) <= base + 1e-9);
    }

    /// The simplified equation and its inverse are consistent for any
    /// achievable rate.
    #[test]
    fn mathis_inverse_is_consistent(p in 1e-6f64..1.0, rtt in 0.001f64..2.0) {
        let rate = mathis_throughput(1500.0, rtt, p);
        let back = mathis_loss_rate(1500.0, rtt, rate);
        prop_assert!((back - p).abs() < 1e-6 * p.max(1e-6));
    }

    /// Feedback timers always lie within [0, T] and cancellation is monotone
    /// in the receiver's own rate.
    #[test]
    fn feedback_timer_bounds(ratio in 0.0f64..2.0, uniform in 1e-9f64..1.0, window in 0.01f64..100.0) {
        let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
        let t = planner.timer(ratio, window, uniform);
        prop_assert!(t >= 0.0);
        prop_assert!(t <= window + 1e-9);
    }

    /// Cancellation: if a receiver with rate `a` is cancelled by an echo, any
    /// receiver with a higher rate is cancelled too.
    #[test]
    fn cancellation_is_monotone(a in 1.0f64..1e9, b in 1.0f64..1e9, echo in 1.0f64..1e9) {
        let planner = FeedbackPlanner::from_config(&TfmccConfig::default());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if planner.should_cancel(lo, echo) {
            prop_assert!(planner.should_cancel(hi, echo));
        }
    }

    /// Loss history invariants under an arbitrary pattern of received
    /// sequence numbers: the loss event rate stays in [0, 1] and equals zero
    /// iff no loss was seen.
    #[test]
    fn loss_history_rate_is_bounded(gaps in proptest::collection::vec(0u64..5, 1..200)) {
        let config = TfmccConfig::default();
        let mut history = LossHistory::new(&config);
        let mut seq = 0u64;
        let mut now = 0.0;
        let mut first = true;
        for gap in gaps {
            seq += gap; // skip `gap` packets (they count as lost)
            let update = history.on_packet(seq, now, 0.05);
            if update.first_loss_event && first {
                history.initialize_first_interval(100_000.0, 0.05, false);
                first = false;
            }
            seq += 1;
            now += 0.01;
        }
        let p = history.loss_event_rate();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(p > 0.0, history.has_loss());
        prop_assert!(history.packets_received() > 0);
    }

    /// SessionManager allocations are collision-free for any mix of
    /// explicitly addressed and auto-allocated sessions, in any order: all
    /// groups and flows are distinct and no port is bound twice — even when
    /// the explicit sessions squat on values inside the auto-allocation
    /// range, which the allocator must skip over.
    #[test]
    fn session_allocations_never_collide(
        explicit in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("sender");
        let b = sim.add_node("receiver");
        let mut mgr = SessionManager::new();
        for (i, &is_explicit) in explicit.iter().enumerate() {
            let spec = if is_explicit {
                // Deliberately inside the auto-allocation ranges (groups
                // from 1, ports from 5000, flows from 100) so later
                // defaulted sessions must skip forward past these.
                SessionSpec::default().with_addressing(
                    GroupId(1 + 2 * i as u32),
                    Port(5000 + 4 * i as u16),
                    Port(5001 + 4 * i as u16),
                    FlowId(100 + 2 * i as u64),
                )
            } else {
                SessionSpec::default()
            };
            mgr.add_population_session(&mut sim, &spec, a, &[PopulationSpec::packet(b)]);
        }
        prop_assert_eq!(mgr.len(), explicit.len());
        let mut groups = BTreeSet::new();
        let mut flows = BTreeSet::new();
        let mut ports = BTreeSet::new();
        for s in mgr.sessions() {
            prop_assert_eq!(mgr.session(s.id).group, s.group, "handle lookup is stable");
            prop_assert!(groups.insert(s.group.0), "group {} allocated twice", s.group.0);
            prop_assert!(flows.insert(s.flow.0), "flow {} allocated twice", s.flow.0);
            prop_assert!(s.data_port != s.sender_port);
            prop_assert!(ports.insert(s.data_port.0), "port {} bound twice", s.data_port.0);
            prop_assert!(ports.insert(s.sender_port.0), "port {} bound twice", s.sender_port.0);
        }
    }

    /// All-defaulted sessions get the documented deterministic allocation
    /// (session i: group 1+i, ports 5000+2i/5001+2i, flow 100+i) regardless
    /// of how many sessions there are or what their specs say otherwise.
    #[test]
    fn auto_allocation_matches_its_documentation(
        n in 1usize..10,
        start_ats in proptest::collection::vec(0.0f64..100.0, 10..11),
    ) {
        let mut sim = Simulator::new(2);
        let a = sim.add_node("sender");
        let b = sim.add_node("receiver");
        let mut mgr = SessionManager::new();
        for (i, &start_at) in start_ats.iter().enumerate().take(n) {
            let spec = SessionSpec::default().starting_at(start_at);
            let id = mgr.add_population_session(&mut sim, &spec, a, &[PopulationSpec::packet(b)]);
            let s = mgr.session(id);
            prop_assert_eq!(s.group, GroupId(1 + i as u32));
            prop_assert_eq!(s.data_port, Port(5000 + 2 * i as u16));
            prop_assert_eq!(s.sender_port, Port(5001 + 2 * i as u16));
            prop_assert_eq!(s.flow, FlowId(100 + i as u64));
            prop_assert_eq!(s.start_at, start_at);
            prop_assert_eq!(s.receivers.len(), 1);
        }
    }

    /// The RTT estimator never reports a non-positive estimate and converges
    /// to constant samples.
    #[test]
    fn rtt_estimator_stays_positive(samples in proptest::collection::vec(0.0f64..5.0, 1..50)) {
        let mut est = RttEstimator::new(&TfmccConfig::default());
        for (i, s) in samples.iter().enumerate() {
            est.on_measurement(*s, i % 2 == 0, s / 2.0);
            prop_assert!(est.current() > 0.0);
        }
        let last = *samples.last().unwrap();
        for _ in 0..200 {
            est.on_measurement(last, true, last / 2.0);
        }
        prop_assert!((est.current() - last.max(1e-4)).abs() < 0.05 * last.max(1e-4) + 1e-6);
    }
}

/// Every documented `add_session` panic fires with its documented message on
/// the corresponding bad input, and a rejected spec leaves the manager
/// untouched (validation runs before any agent is attached).
#[test]
fn session_manager_validation_panics_are_exhaustive() {
    let mut sim = Simulator::new(3);
    let a = sim.add_node("sender");
    let b = sim.add_node("receiver");
    let mut mgr = SessionManager::new();
    mgr.add_population_session(
        &mut sim,
        &SessionSpec::default(),
        a,
        &[PopulationSpec::packet(b)],
    );

    let mut expect_panic = |spec: SessionSpec, receivers: Vec<ReceiverSpec>, needle: &str| {
        let before = mgr.len();
        let err = catch_unwind(AssertUnwindSafe(|| {
            mgr.add_population_session(&mut sim, &spec, a, &PopulationSpec::packets(&receivers));
        }))
        .expect_err(&format!("bad input must panic (wanted: {needle})"));
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains(needle),
            "panic message {msg:?} does not mention {needle:?}"
        );
        assert_eq!(mgr.len(), before, "a rejected spec must not half-register");
    };

    expect_panic(SessionSpec::default(), vec![], "at least one receiver");
    expect_panic(
        SessionSpec::default().starting_at(f64::NAN),
        vec![ReceiverSpec::always(b)],
        "start_at must be finite",
    );
    expect_panic(
        SessionSpec::default().with_meter_bin(0.0),
        vec![ReceiverSpec::always(b)],
        "meter_bin must be a positive",
    );
    expect_panic(
        SessionSpec::default().with_addressing(GroupId(9), Port(7000), Port(7000), FlowId(9)),
        vec![ReceiverSpec::always(b)],
        "must differ",
    );
    expect_panic(
        SessionSpec::default(),
        vec![ReceiverSpec::joining_at(b, -1.0)],
        "join_at must be finite",
    );
    expect_panic(
        SessionSpec::default(),
        vec![ReceiverSpec::joining_at(b, 5.0).leaving_at(4.0)],
        "must be finite and after join_at",
    );
    expect_panic(
        SessionSpec::default(),
        vec![ReceiverSpec::always(b).leaving_at(10.0).churning(2.0, 2.0)],
        "leave_at and churn are exclusive",
    );
    expect_panic(
        SessionSpec::default(),
        vec![ReceiverSpec::always(b).churning(0.0, 2.0)],
        "churn periods must be positive",
    );
    // Collisions with the session added above (group 1, ports 5000/5001,
    // flow 100).
    expect_panic(
        SessionSpec::default().with_addressing(GroupId(1), Port(7000), Port(7001), FlowId(9)),
        vec![ReceiverSpec::always(b)],
        "already uses multicast group",
    );
    expect_panic(
        SessionSpec::default().with_addressing(GroupId(9), Port(7000), Port(7001), FlowId(100)),
        vec![ReceiverSpec::always(b)],
        "already uses flow id",
    );
    expect_panic(
        SessionSpec::default().with_addressing(GroupId(9), Port(5000), Port(7001), FlowId(9)),
        vec![ReceiverSpec::always(b)],
        "overlapping ports would",
    );
    expect_panic(
        SessionSpec::default().with_addressing(GroupId(9), Port(7000), Port(5001), FlowId(9)),
        vec![ReceiverSpec::always(b)],
        "reports would",
    );
}
