//! The TFMCC sender state machine (sans-I/O).
//!
//! The sender consumes receiver reports and produces data-packet headers plus
//! the current sending rate.  Adapters drive it with:
//!
//! * [`TfmccSender::on_feedback`] when a receiver report arrives;
//! * [`TfmccSender::next_data`] each time they are about to transmit a data
//!   packet (the adapter paces packets at
//!   [`TfmccSender::packet_interval`]).
//!
//! The sender implements CLR (current limiting receiver) selection and
//! timeout, rate adjustment with the one-packet-per-RTT increase limit after
//! CLR changes, slowstart, feedback-round management, the per-round
//! suppression echo, and the prioritised echoing of receiver reports for RTT
//! measurement (paper Sections 2.2, 2.4.2, 2.4.4, 2.5, 2.6, Appendix C).
//!
//! Per-receiver bookkeeping and the aggregates derived from it (maximum RTT,
//! CLR candidate, per-round suppression minimum) live behind the pluggable
//! [`FeedbackAggregator`] — see [`crate::aggregator`] for the scan-based
//! reference implementation and the ordered-index incremental one that keeps
//! the per-data-packet path O(1) at 10⁵ receivers.

use std::hash::Hasher;

use tfmcc_model::throughput::padhye_throughput;

use crate::aggregator::{Aggregator, AggregatorKind, FeedbackAggregator, ReceiverInfo};
use crate::config::TfmccConfig;
use crate::packets::{DataPacket, FeedbackPacket, ReceiverId, RttEcho};
use crate::step::{hash_f64, hash_opt_f64, StateFingerprint};

/// Echo waiting to be placed in a data packet, with its priority
/// (lower value = higher priority, paper Section 2.4.2).
#[derive(Debug, Clone)]
struct PendingEcho {
    receiver: ReceiverId,
    timestamp: f64,
    received_at: f64,
    priority: u8,
    rate: f64,
}

/// State of the current limiting receiver.
#[derive(Debug, Clone)]
struct ClrState {
    id: ReceiverId,
    rate: f64,
    rtt: f64,
    last_feedback_at: f64,
}

/// Statistics the sender accumulates, exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SenderStats {
    /// Data packets emitted.
    pub data_packets: u64,
    /// Feedback packets processed.
    pub feedback_received: u64,
    /// Number of CLR changes.
    pub clr_changes: u64,
    /// Number of times the CLR timed out.
    pub clr_timeouts: u64,
    /// Number of feedback rounds completed.
    pub rounds: u64,
    /// Longest observed gap, in seconds, between losing the CLR (leave or
    /// timeout) and installing a replacement.  Zero if every vacancy was
    /// filled by an immediate re-election.
    pub max_clr_recovery_secs: f64,
}

/// The TFMCC sender.
#[derive(Debug, Clone)]
pub struct TfmccSender {
    config: TfmccConfig,
    current_rate: f64,
    slowstart: bool,
    slowstart_min_recv: Option<f64>,
    slowstart_target: f64,
    clr: Option<ClrState>,
    /// Previous CLR remembered across a switch-over (Appendix C), with the
    /// time until which it is retained.
    previous_clr: Option<(ClrState, f64)>,
    receivers: Aggregator,
    feedback_round: u64,
    round_started_at: f64,
    echo_queue: Vec<PendingEcho>,
    seqno: u64,
    last_rate_adjust_at: f64,
    started: bool,
    /// Time at which the CLR slot became vacant after a leave or timeout,
    /// while no replacement candidate was known.  `None` while a CLR is
    /// installed (or before the first CLR was ever elected).
    clr_vacant_since: Option<f64>,
    stats: SenderStats,
}

impl TfmccSender {
    /// Creates a sender with the feedback aggregator selected by
    /// [`AggregatorKind::resolve`] (the `TFMCC_AGGREGATOR` environment
    /// variable, defaulting to the incremental implementation).
    pub fn new(config: TfmccConfig) -> Self {
        Self::with_aggregator(config, AggregatorKind::resolve())
    }

    /// Creates a sender with an explicit feedback-aggregation implementation.
    pub fn with_aggregator(config: TfmccConfig, aggregator: AggregatorKind) -> Self {
        config.validate().expect("invalid TFMCC configuration");
        let initial_rate = config.initial_rate();
        TfmccSender {
            current_rate: initial_rate,
            slowstart: true,
            slowstart_min_recv: None,
            slowstart_target: initial_rate,
            clr: None,
            previous_clr: None,
            receivers: Aggregator::new(aggregator),
            feedback_round: 1,
            round_started_at: 0.0,
            echo_queue: Vec::new(),
            seqno: 0,
            last_rate_adjust_at: 0.0,
            started: false,
            clr_vacant_since: None,
            stats: SenderStats::default(),
            config,
        }
    }

    /// Which feedback-aggregation implementation this sender runs on.
    pub fn aggregator_kind(&self) -> AggregatorKind {
        self.receivers.kind()
    }

    /// Current sending rate in bytes/second.
    pub fn current_rate(&self) -> f64 {
        self.current_rate
    }

    /// Interval between data packets at the current rate, in seconds.
    pub fn packet_interval(&self) -> f64 {
        f64::from(self.config.packet_size) / self.current_rate.max(1.0)
    }

    /// The current limiting receiver, if one has been selected.
    pub fn clr(&self) -> Option<ReceiverId> {
        self.clr.as_ref().map(|c| c.id)
    }

    /// True while the sender is still in slowstart.
    pub fn in_slowstart(&self) -> bool {
        self.slowstart
    }

    /// The current feedback round number (carried in every data packet).
    pub fn feedback_round(&self) -> u64 {
        self.feedback_round
    }

    /// Number of distinct receivers that have reported so far.
    pub fn known_receivers(&self) -> usize {
        self.receivers.len()
    }

    /// Total number of receivers the session stands for: the sum of the
    /// weights of all aggregator entries.  Equal to
    /// [`Self::known_receivers`] when every report is an ordinary (weight-1)
    /// one; larger when fluid population bins report on behalf of many.
    pub fn session_population(&self) -> u64 {
        self.receivers.population()
    }

    /// Number of known receivers with a valid (receiver-side) RTT measurement.
    pub fn receivers_with_rtt(&self) -> usize {
        self.receivers.receivers_with_rtt()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The maximum RTT over all known receivers, falling back to the initial
    /// RTT for receivers that have not yet measured theirs.
    pub fn max_rtt(&self) -> f64 {
        self.receivers.max_rtt(self.config.initial_rtt)
    }

    /// The feedback window `T` currently advertised to receivers.
    pub fn feedback_window(&self) -> f64 {
        self.config
            .feedback_window(self.max_rtt(), self.current_rate)
    }

    /// The local time at which the current feedback round began (meaningful
    /// once the sender has [started](Self::on_tick)).
    pub fn round_started_at(&self) -> f64 {
        self.round_started_at
    }

    /// True if at least one known receiver qualifies as a CLR candidate —
    /// i.e. the sender has the information needed to elect a CLR right now.
    pub fn has_limited_receiver(&self) -> bool {
        self.receivers
            .clr_candidate(self.config.initial_rtt)
            .is_some()
    }

    /// The time since which the CLR slot has been vacant following a leave
    /// or timeout, or `None` while a CLR is installed (or none was ever
    /// elected).
    pub fn clr_vacant_since(&self) -> Option<f64> {
        self.clr_vacant_since
    }

    /// Processes a receiver report.
    pub fn on_feedback(&mut self, now: f64, fb: &FeedbackPacket) {
        self.on_population_feedback(now, fb, 1);
    }

    /// Processes a population-weighted receiver report: the report is handled
    /// exactly like an ordinary one, but the aggregator entry stands for
    /// `weight` receivers, so [`Self::session_population`] counts them all.
    /// Fluid population agents in the hybrid tier send these under synthetic
    /// receiver ids (one per quantized bin).
    pub fn on_population_feedback(&mut self, now: f64, fb: &FeedbackPacket, weight: u64) {
        self.stats.feedback_received += 1;
        if fb.leaving {
            self.handle_leave(now, fb.receiver);
            return;
        }

        // Effective RTT: the receiver's own measurement if it has one,
        // otherwise the sender-side measurement from the echoed timestamp
        // (paper Section 2.4.4).
        let sender_side_rtt = (now - fb.echo_timestamp - fb.echo_delay).max(1e-4);
        let effective_rtt = if fb.has_rtt_measurement {
            fb.rtt
        } else {
            sender_side_rtt
        };

        // Effective calculated rate: recompute from the loss event rate when
        // the receiver was still using its initial RTT, so that a huge
        // initial RTT does not masquerade as congestion.
        let effective_rate = if fb.has_rtt_measurement {
            fb.calculated_rate
        } else if fb.loss_event_rate > 0.0 {
            padhye_throughput(
                f64::from(self.config.packet_size),
                effective_rtt,
                fb.loss_event_rate,
            )
        } else {
            f64::INFINITY
        };

        self.receivers.upsert(
            fb.receiver,
            ReceiverInfo {
                rate: effective_rate,
                rtt: Some(effective_rtt),
                has_own_rtt: fb.has_rtt_measurement,
                last_report_timestamp: fb.timestamp,
                last_report_at: now,
                weight,
            },
        );

        // Suppression echo for the current round.
        if fb.feedback_round == self.feedback_round {
            let echo_rate = if self.slowstart && fb.loss_event_rate <= 0.0 {
                fb.receive_rate
            } else {
                effective_rate
            };
            self.receivers.observe_round_rate(fb.receiver, echo_rate);
        }

        // Slowstart bookkeeping.
        if self.slowstart {
            if fb.loss_event_rate > 0.0 {
                // First loss anywhere terminates slowstart (Section 2.6).
                self.slowstart = false;
                self.adopt_clr(now, fb.receiver, effective_rate, effective_rtt);
                self.current_rate = self.current_rate.min(effective_rate.max(1.0));
                self.last_rate_adjust_at = now;
            } else {
                self.slowstart_min_recv = Some(
                    self.slowstart_min_recv
                        .map_or(fb.receive_rate, |m| m.min(fb.receive_rate)),
                );
            }
        }

        let mut became_clr = false;
        if !self.slowstart {
            match &mut self.clr {
                Some(clr) if clr.id == fb.receiver => {
                    clr.rate = effective_rate;
                    clr.rtt = effective_rtt;
                    clr.last_feedback_at = now;
                    // Appendix C: if the previous CLR would now be the more
                    // limiting receiver again, switch back to it without
                    // waiting for its feedback.
                    if let Some((prev, valid_until)) = &self.previous_clr {
                        if now <= *valid_until && prev.rate < effective_rate {
                            let prev = prev.clone();
                            self.switch_clr(now, prev);
                        }
                    }
                    self.adjust_rate_toward(now, self.clr.as_ref().map(|c| (c.rate, c.rtt)));
                }
                Some(clr) => {
                    if effective_rate < clr.rate {
                        // A more limited receiver becomes the CLR; if its rate
                        // is also below the current sending rate the sender
                        // reduces immediately (Section 2.2).
                        self.adopt_clr(now, fb.receiver, effective_rate, effective_rtt);
                        if effective_rate < self.current_rate {
                            self.current_rate = effective_rate.max(1.0);
                            self.last_rate_adjust_at = now;
                        }
                        became_clr = true;
                    }
                }
                None => {
                    self.adopt_clr(now, fb.receiver, effective_rate, effective_rtt);
                    if effective_rate < self.current_rate {
                        self.current_rate = effective_rate.max(1.0);
                        self.last_rate_adjust_at = now;
                    }
                    became_clr = true;
                }
            }
        }

        // Queue the report for echoing, with the paper's priority order.
        let priority = if became_clr {
            0
        } else if !fb.has_rtt_measurement {
            1
        } else if Some(fb.receiver) != self.clr() {
            2
        } else {
            3
        };
        self.echo_queue.push(PendingEcho {
            receiver: fb.receiver,
            timestamp: fb.timestamp,
            received_at: now,
            priority,
            rate: effective_rate,
        });
        self.echo_queue.sort_by(|a, b| {
            a.priority.cmp(&b.priority).then(
                a.rate
                    .partial_cmp(&b.rate)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        self.echo_queue.truncate(64);
    }

    fn handle_leave(&mut self, now: f64, receiver: ReceiverId) {
        self.receivers.remove(receiver);
        if self.clr().map(|c| c == receiver).unwrap_or(false) {
            self.stats.clr_changes += 1;
            self.clr = None;
            self.previous_clr = None;
            self.clr_vacant_since = Some(now);
            self.elect_clr_from_known(now);
            // Rate increase toward the (higher-rate) new CLR is limited to
            // one packet per RTT by adjust_rate_toward.
        }
    }

    fn elect_clr_from_known(&mut self, now: f64) {
        if let Some((id, rate, rtt)) = self.receivers.clr_candidate(self.config.initial_rtt) {
            self.clr = Some(ClrState {
                id,
                rate,
                rtt,
                last_feedback_at: now,
            });
            self.note_clr_filled(now);
        }
    }

    /// Closes an open CLR vacancy, recording the recovery gap.
    fn note_clr_filled(&mut self, now: f64) {
        if let Some(since) = self.clr_vacant_since.take() {
            let gap = (now - since).max(0.0);
            if gap > self.stats.max_clr_recovery_secs {
                self.stats.max_clr_recovery_secs = gap;
            }
        }
    }

    fn adopt_clr(&mut self, now: f64, id: ReceiverId, rate: f64, rtt: f64) {
        let new = ClrState {
            id,
            rate,
            rtt,
            last_feedback_at: now,
        };
        if let Some(old) = self.clr.take() {
            if old.id != id {
                let hold = self.config.previous_clr_hold_rtts * old.rtt.max(1e-3);
                if hold > 0.0 {
                    self.previous_clr = Some((old, now + hold));
                }
                self.stats.clr_changes += 1;
            }
        } else {
            self.stats.clr_changes += 1;
        }
        self.clr = Some(new);
        self.note_clr_filled(now);
    }

    fn switch_clr(&mut self, now: f64, to: ClrState) {
        if let Some(old) = self.clr.take() {
            let hold = self.config.previous_clr_hold_rtts * old.rtt.max(1e-3);
            self.previous_clr = Some((old, now + hold));
        }
        self.stats.clr_changes += 1;
        self.clr = Some(ClrState {
            last_feedback_at: now,
            ..to
        });
    }

    /// Moves the current rate toward the CLR's reported rate, with decreases
    /// applied immediately and increases limited to one packet per RTT per
    /// RTT (Section 2.2).
    fn adjust_rate_toward(&mut self, now: f64, target: Option<(f64, f64)>) {
        let Some((target_rate, rtt)) = target else {
            return;
        };
        let target_rate = target_rate.max(1.0);
        if target_rate < self.current_rate {
            self.current_rate = target_rate;
        } else {
            let elapsed = (now - self.last_rate_adjust_at).max(0.0);
            let rtt = rtt.max(1e-3);
            let max_increase = f64::from(self.config.packet_size) / rtt * (elapsed / rtt);
            self.current_rate = (self.current_rate + max_increase).min(target_rate);
        }
        self.last_rate_adjust_at = now;
    }

    /// Advances feedback rounds, applies slowstart ramping and CLR timeouts.
    /// Called internally from [`Self::next_data`]; exposed for adapters that
    /// want to drive time forward without sending (e.g. when the application
    /// is idle).
    pub fn on_tick(&mut self, now: f64) {
        if !self.started {
            self.started = true;
            self.round_started_at = now;
            self.last_rate_adjust_at = now;
        }
        // Feedback round management.
        let window = self.feedback_window();
        if now - self.round_started_at >= window {
            self.feedback_round += 1;
            self.stats.rounds += 1;
            self.round_started_at = now;
            self.receivers.reset_round();
            if self.slowstart {
                if let Some(min_recv) = self.slowstart_min_recv.take() {
                    self.slowstart_target =
                        (self.config.slowstart_multiple * min_recv).max(self.config.initial_rate());
                }
            }
        }
        // Slowstart ramp: approach the target over roughly one RTT.
        if self.slowstart {
            let rtt = self.max_rtt();
            let elapsed = (now - self.last_rate_adjust_at).max(0.0);
            if self.slowstart_target > self.current_rate {
                let step = (self.slowstart_target - self.current_rate) * (elapsed / rtt).min(1.0);
                self.current_rate += step;
            }
            self.last_rate_adjust_at = now;
        }
        // CLR timeout (Section 2.2): absence of feedback for 10 feedback
        // delays means the CLR is assumed to have left.
        let timed_out = self
            .clr
            .as_ref()
            .map(|c| now - c.last_feedback_at > self.config.clr_timeout_multiple * window)
            .unwrap_or(false);
        if timed_out {
            let id = self.clr.as_ref().map(|c| c.id).expect("checked above");
            self.stats.clr_timeouts += 1;
            self.stats.clr_changes += 1;
            self.receivers.remove(id);
            self.clr = None;
            self.previous_clr = None;
            self.clr_vacant_since = Some(now);
            self.elect_clr_from_known(now);
        }
        // Expire the stored previous CLR.
        if let Some((_, valid_until)) = &self.previous_clr {
            if now > *valid_until {
                self.previous_clr = None;
            }
        }
    }

    /// Builds the header of the next data packet to transmit at time `now`.
    pub fn next_data(&mut self, now: f64) -> DataPacket {
        self.on_tick(now);
        self.stats.data_packets += 1;
        let seqno = self.seqno;
        self.seqno += 1;

        // Echo selection: highest-priority queued report, falling back to the
        // CLR's most recent report so the CLR keeps its RTT fresh.
        let rtt_echo = if let Some(echo) = self.pop_echo() {
            Some(RttEcho {
                receiver: echo.receiver,
                echo_timestamp: echo.timestamp,
                echo_delay: (now - echo.received_at).max(0.0),
            })
        } else {
            self.clr().and_then(|id| {
                self.receivers.get(id).map(|info| RttEcho {
                    receiver: id,
                    echo_timestamp: info.last_report_timestamp,
                    echo_delay: (now - info.last_report_at).max(0.0),
                })
            })
        };

        DataPacket {
            seqno,
            timestamp: now,
            current_rate: self.current_rate,
            max_rtt: self.max_rtt(),
            feedback_round: self.feedback_round,
            slowstart: self.slowstart,
            clr: self.clr(),
            rtt_echo,
            suppression: self.receivers.round_min(),
            size: self.config.packet_size,
        }
    }

    fn pop_echo(&mut self) -> Option<PendingEcho> {
        if self.echo_queue.is_empty() {
            None
        } else {
            Some(self.echo_queue.remove(0))
        }
    }
}

impl StateFingerprint for ClrState {
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.id.0);
        hash_f64(h, self.rate);
        hash_f64(h, self.rtt);
        hash_f64(h, self.last_feedback_at);
    }
}

impl StateFingerprint for TfmccSender {
    /// Hashes every field that influences future behaviour.  The immutable
    /// configuration and the accumulated [`SenderStats`] (monotone counters
    /// that never feed back into protocol decisions) are excluded so that
    /// states with identical future behaviour deduplicate.
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        hash_f64(h, self.current_rate);
        h.write_u8(self.slowstart as u8);
        hash_opt_f64(h, self.slowstart_min_recv);
        hash_f64(h, self.slowstart_target);
        match &self.clr {
            Some(clr) => {
                h.write_u8(1);
                clr.fingerprint(h);
            }
            None => h.write_u8(0),
        }
        match &self.previous_clr {
            Some((clr, valid_until)) => {
                h.write_u8(1);
                clr.fingerprint(h);
                hash_f64(h, *valid_until);
            }
            None => h.write_u8(0),
        }
        self.receivers.fingerprint(h);
        h.write_u64(self.feedback_round);
        hash_f64(h, self.round_started_at);
        h.write_usize(self.echo_queue.len());
        for echo in &self.echo_queue {
            h.write_u64(echo.receiver.0);
            hash_f64(h, echo.timestamp);
            hash_f64(h, echo.received_at);
            h.write_u8(echo.priority);
            hash_f64(h, echo.rate);
        }
        h.write_u64(self.seqno);
        hash_f64(h, self.last_rate_adjust_at);
        h.write_u8(self.started as u8);
        hash_opt_f64(h, self.clr_vacant_since);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> TfmccSender {
        TfmccSender::new(TfmccConfig::default())
    }

    fn feedback(id: u64, round: u64, now: f64) -> FeedbackPacket {
        FeedbackPacket {
            receiver: ReceiverId(id),
            timestamp: now,
            echo_timestamp: now - 0.05,
            echo_delay: 0.0,
            calculated_rate: f64::INFINITY,
            loss_event_rate: 0.0,
            receive_rate: 100_000.0,
            rtt: 0.05,
            has_rtt_measurement: true,
            feedback_round: round,
            leaving: false,
        }
    }

    #[test]
    fn starts_in_slowstart_at_initial_rate() {
        let s = sender();
        assert!(s.in_slowstart());
        assert!((s.current_rate() - 2000.0).abs() < 1e-9);
        assert!(s.clr().is_none());
    }

    #[test]
    fn slowstart_ramps_toward_twice_min_receive_rate() {
        let mut s = sender();
        let mut now = 0.0;
        // Drive data packets and lossless feedback for a while.
        for i in 0..2000 {
            let _ = s.next_data(now);
            if i % 50 == 0 {
                let mut fb = feedback(1, s.feedback_round, now);
                fb.receive_rate = s.current_rate(); // receiver keeps up
                s.on_feedback(now, &fb);
            }
            now += s.packet_interval().min(0.1);
        }
        assert!(s.in_slowstart());
        assert!(
            s.current_rate() > 10_000.0,
            "rate should have grown exponentially, got {}",
            s.current_rate()
        );
    }

    #[test]
    fn first_loss_terminates_slowstart_and_selects_clr() {
        let mut s = sender();
        let mut now = 0.0;
        for _ in 0..100 {
            let _ = s.next_data(now);
            now += s.packet_interval().min(0.1);
        }
        let mut fb = feedback(7, s.feedback_round, now);
        fb.loss_event_rate = 0.01;
        fb.calculated_rate = 80_000.0;
        s.on_feedback(now, &fb);
        assert!(!s.in_slowstart());
        assert_eq!(s.clr(), Some(ReceiverId(7)));
        assert!(s.current_rate() <= 80_000.0 + 1e-9);
    }

    #[test]
    fn lower_rate_feedback_reduces_rate_immediately_and_switches_clr() {
        let mut s = sender();
        let now = 1.0;
        let mut fb = feedback(1, 1, now);
        fb.loss_event_rate = 0.01;
        fb.calculated_rate = 90_000.0;
        s.on_feedback(now, &fb);
        assert_eq!(s.clr(), Some(ReceiverId(1)));
        let mut fb2 = feedback(2, 1, now + 0.1);
        fb2.loss_event_rate = 0.05;
        fb2.calculated_rate = 30_000.0;
        s.on_feedback(now + 0.1, &fb2);
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        assert!(s.current_rate() <= 30_000.0 + 1e-9);
        assert!(s.stats().clr_changes >= 2);
    }

    #[test]
    fn higher_rate_feedback_from_non_clr_is_ignored_for_rate() {
        let mut s = sender();
        let now = 1.0;
        let mut fb = feedback(1, 1, now);
        fb.loss_event_rate = 0.05;
        fb.calculated_rate = 30_000.0;
        s.on_feedback(now, &fb);
        let rate_before = s.current_rate();
        let mut fb2 = feedback(2, 1, now + 0.1);
        fb2.loss_event_rate = 0.001;
        fb2.calculated_rate = 500_000.0;
        s.on_feedback(now + 0.1, &fb2);
        assert_eq!(s.clr(), Some(ReceiverId(1)));
        assert!((s.current_rate() - rate_before).abs() < 1e-9);
    }

    #[test]
    fn clr_rate_increase_is_limited_to_one_packet_per_rtt() {
        let mut s = sender();
        let mut now = 1.0;
        let mut fb = feedback(1, 1, now);
        fb.loss_event_rate = 0.02;
        fb.calculated_rate = 50_000.0;
        fb.rtt = 0.1;
        s.on_feedback(now, &fb);
        // Slowstart terminates; the sending rate never exceeds the report.
        assert!(!s.in_slowstart());
        assert!(s.current_rate() <= 50_000.0);
        let start_rate = s.current_rate();
        // The CLR now reports a much higher rate every 100 ms; the increase is
        // capped at one packet per RTT per RTT = 10 kB/s per 100 ms.
        for _ in 0..10 {
            now += 0.1;
            let mut fb = feedback(1, 1, now);
            fb.loss_event_rate = 0.0001;
            fb.calculated_rate = 10_000_000.0;
            fb.rtt = 0.1;
            s.on_feedback(now, &fb);
        }
        assert!(
            s.current_rate() <= start_rate + 110_000.0,
            "rate climbed too fast: {}",
            s.current_rate()
        );
        assert!(
            s.current_rate() > start_rate + 50_000.0,
            "rate should still have increased: {}",
            s.current_rate()
        );
    }

    #[test]
    fn clr_leave_elects_next_most_limited_receiver() {
        let mut s = sender();
        let now = 1.0;
        for (id, rate) in [(1u64, 40_000.0), (2, 60_000.0), (3, 90_000.0)] {
            let mut fb = feedback(id, 1, now);
            fb.loss_event_rate = 0.01;
            fb.calculated_rate = rate;
            s.on_feedback(now, &fb);
        }
        assert_eq!(s.clr(), Some(ReceiverId(1)));
        let mut leave = feedback(1, 1, now + 0.5);
        leave.leaving = true;
        s.on_feedback(now + 0.5, &leave);
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        assert_eq!(s.known_receivers(), 2);
    }

    #[test]
    fn clr_timeout_drops_unresponsive_clr() {
        let mut s = sender();
        let mut now = 1.0;
        let mut fb = feedback(1, 1, now);
        fb.loss_event_rate = 0.01;
        fb.calculated_rate = 50_000.0;
        s.on_feedback(now, &fb);
        let mut fb2 = feedback(2, 1, now);
        fb2.loss_event_rate = 0.005;
        fb2.calculated_rate = 80_000.0;
        s.on_feedback(now, &fb2);
        assert_eq!(s.clr(), Some(ReceiverId(1)));
        // Keep receiver 2 fresh while receiver 1 goes silent far beyond the
        // timeout (10 feedback windows).
        let window = s.feedback_window();
        while now < 1.0 + 12.0 * window {
            now += window / 4.0;
            let _ = s.next_data(now);
            let mut fb2 = feedback(2, s.feedback_round, now);
            fb2.loss_event_rate = 0.005;
            fb2.calculated_rate = 80_000.0;
            s.on_feedback(now, &fb2);
        }
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        assert!(s.stats().clr_timeouts >= 1);
    }

    #[test]
    fn feedback_rounds_advance_and_reset_suppression_echo() {
        let mut s = sender();
        let mut now = 0.0;
        let _ = s.next_data(now);
        let round0 = s.feedback_round;
        let mut fb = feedback(5, round0, now);
        fb.loss_event_rate = 0.01;
        fb.calculated_rate = 70_000.0;
        s.on_feedback(now, &fb);
        let d = s.next_data(now + 0.01);
        assert!(d.suppression.is_some());
        assert_eq!(d.suppression.unwrap().receiver, ReceiverId(5));
        // Jump past the feedback window: the round increments and the echo is
        // cleared.
        now += s.feedback_window() + 1.0;
        let d = s.next_data(now);
        assert!(d.feedback_round > round0);
        assert!(d.suppression.is_none());
    }

    #[test]
    fn echo_priority_prefers_receivers_without_rtt() {
        let mut s = sender();
        let now = 1.0;
        let _ = s.next_data(now);
        // Receiver 1 (has RTT) reports first, receiver 2 (no RTT) second.
        let mut fb1 = feedback(1, s.feedback_round, now);
        fb1.loss_event_rate = 0.01;
        fb1.calculated_rate = 70_000.0;
        s.on_feedback(now, &fb1);
        let mut fb2 = feedback(2, s.feedback_round, now + 0.001);
        fb2.has_rtt_measurement = false;
        fb2.loss_event_rate = 0.02;
        fb2.calculated_rate = 60_000.0;
        s.on_feedback(now + 0.001, &fb2);
        // Receiver 1's report made it CLR (priority 0); receiver 2 has no RTT
        // (priority 1). CLR switch to 2? rate 60k via sender-side rtt... the
        // adopted CLR may change; what matters here is that both eventually
        // get echoed and the no-RTT receiver is not starved.
        let d1 = s.next_data(now + 0.01);
        let d2 = s.next_data(now + 0.02);
        let echoed: Vec<ReceiverId> = [d1, d2]
            .iter()
            .filter_map(|d| d.rtt_echo.as_ref().map(|e| e.receiver))
            .collect();
        assert!(echoed.contains(&ReceiverId(2)), "echoes: {echoed:?}");
    }

    #[test]
    fn data_packets_carry_monotone_seqnos_and_current_state() {
        let mut s = sender();
        let mut last_seq = None;
        let mut now = 0.0;
        for _ in 0..50 {
            let d = s.next_data(now);
            if let Some(prev) = last_seq {
                assert_eq!(d.seqno, prev + 1);
            }
            assert_eq!(d.size, 1000);
            assert!(d.current_rate > 0.0);
            assert!(d.max_rtt >= 0.001);
            last_seq = Some(d.seqno);
            now += 0.01;
        }
        assert_eq!(s.stats().data_packets, 50);
    }

    #[test]
    fn clr_recovery_gap_is_recorded_when_vacancy_is_filled_late() {
        let mut s = sender();
        let now = 1.0;
        // A lone receiver becomes CLR, then leaves: no candidate remains, so
        // the slot stays vacant.
        let mut fb = feedback(1, 1, now);
        fb.loss_event_rate = 0.01;
        fb.calculated_rate = 50_000.0;
        s.on_feedback(now, &fb);
        assert_eq!(s.clr(), Some(ReceiverId(1)));
        assert_eq!(s.clr_vacant_since(), None);
        let mut leave = feedback(1, 1, now + 0.5);
        leave.leaving = true;
        s.on_feedback(now + 0.5, &leave);
        assert_eq!(s.clr(), None);
        assert!(!s.has_limited_receiver());
        assert_eq!(s.clr_vacant_since(), Some(now + 0.5));
        // A replacement reports 2 seconds later: the vacancy closes and the
        // gap is recorded.
        let mut fb2 = feedback(2, 1, now + 2.5);
        fb2.loss_event_rate = 0.02;
        fb2.calculated_rate = 40_000.0;
        s.on_feedback(now + 2.5, &fb2);
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        assert_eq!(s.clr_vacant_since(), None);
        assert!((s.stats().max_clr_recovery_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn immediate_reelection_records_zero_recovery_gap() {
        let mut s = sender();
        let now = 1.0;
        for (id, rate) in [(1u64, 40_000.0), (2, 60_000.0)] {
            let mut fb = feedback(id, 1, now);
            fb.loss_event_rate = 0.01;
            fb.calculated_rate = rate;
            s.on_feedback(now, &fb);
        }
        let mut leave = feedback(1, 1, now + 0.5);
        leave.leaving = true;
        s.on_feedback(now + 0.5, &leave);
        // Receiver 2 was elected in the same step: no open vacancy, zero gap.
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        assert_eq!(s.clr_vacant_since(), None);
        assert_eq!(s.stats().max_clr_recovery_secs, 0.0);
    }

    #[test]
    fn previous_clr_is_restored_when_new_clr_recovers() {
        let mut s = sender();
        let now = 1.0;
        // Receiver 1 is CLR at 50 kB/s.
        let mut fb1 = feedback(1, 1, now);
        fb1.loss_event_rate = 0.02;
        fb1.calculated_rate = 50_000.0;
        s.on_feedback(now, &fb1);
        // Receiver 2 briefly dips below and takes over.
        let mut fb2 = feedback(2, 1, now + 0.05);
        fb2.loss_event_rate = 0.05;
        fb2.calculated_rate = 30_000.0;
        s.on_feedback(now + 0.05, &fb2);
        assert_eq!(s.clr(), Some(ReceiverId(2)));
        // Receiver 2 recovers above receiver 1's rate shortly after: the
        // sender switches back to the stored previous CLR (Appendix C).
        let mut fb2b = feedback(2, 1, now + 0.1);
        fb2b.loss_event_rate = 0.005;
        fb2b.calculated_rate = 90_000.0;
        s.on_feedback(now + 0.1, &fb2b);
        assert_eq!(s.clr(), Some(ReceiverId(1)));
    }
}
