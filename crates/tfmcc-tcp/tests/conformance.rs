//! Protocol-conformance suite for the TCP competitor: the sim-driven
//! throughput must respond to path loss the way Reno's control equation
//! says (rate ∝ 1/√p), and two TCP flows sharing one bottleneck must
//! converge to a fair allocation.  Mirrors the 5%-loss conformance test of
//! `tfmcc-tfrc`, as a property over loss rates and seeds.

use netsim::prelude::*;
use proptest::prelude::*;
use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

/// Runs one TCP flow over a dedicated path with `loss` Bernoulli data-path
/// loss and returns its steady-state throughput in bytes/second.
fn run_path(loss: f64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let (down, _) = sim.add_duplex_link(a, b, 1_250_000.0, 0.02, QueueDiscipline::drop_tail(200));
    if loss > 0.0 {
        sim.set_link_loss(down, LossModel::Bernoulli { p: loss });
    }
    let sink = sim.add_agent(b, Port(1), Box::new(TcpSink::new(1.0)));
    sim.add_agent(
        a,
        Port(2),
        Box::new(TcpSender::new(TcpSenderConfig::new(
            Address::new(b, Port(1)),
            FlowId(77),
        ))),
    );
    sim.run_until(SimTime::from_secs(90.0));
    sim.agent::<TcpSink>(sink)
        .unwrap()
        .meter()
        .average_between(40.0, 85.0)
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`.
fn jain(rates: &[f64]) -> f64 {
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|r| r * r).sum();
    sum * sum / (rates.len() as f64 * sq)
}

proptest! {
    /// Reno's equation: throughput falls with √p, so a few percent of loss
    /// must cost well over half of a clean run's (pipe-limited) rate.
    #[test]
    fn tcp_rate_responds_to_path_loss(loss in 0.03f64..0.08, seed in 1u64..1_000) {
        let clean = run_path(0.0, seed);
        let lossy = run_path(loss, seed);
        prop_assert!(lossy > 1_000.0, "the lossy flow must still progress: {lossy}");
        prop_assert!(
            lossy < clean * 0.5,
            "{:.1}% loss must at least halve the rate: clean {clean}, lossy {lossy}",
            loss * 100.0
        );
    }

    /// Two TCP flows on one bottleneck converge to a fair share.  The
    /// bottleneck runs gentle RED so the flows do not phase-lock on a
    /// synchronized drop-tail overflow pattern.
    #[test]
    fn two_tcp_flows_share_a_bottleneck_fairly(seed in 1u64..1_000) {
        let mut sim = Simulator::new(seed);
        let left = sim.add_node("left");
        let right = sim.add_node("right");
        sim.add_duplex_link(left, right, 1_000_000.0, 0.02, QueueDiscipline::red_gentle(50));
        let mut sinks = Vec::new();
        for i in 0..2u16 {
            let s = sim.add_node(&format!("s{i}"));
            let r = sim.add_node(&format!("r{i}"));
            sim.add_duplex_link(s, left, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));
            sim.add_duplex_link(
                right,
                r,
                1_250_000.0,
                0.005 + 0.002 * f64::from(i),
                QueueDiscipline::drop_tail(60),
            );
            let sink = sim.add_agent(r, Port(1), Box::new(TcpSink::new(1.0)));
            sim.add_agent(
                s,
                Port(2),
                Box::new(TcpSender::new(TcpSenderConfig::new(
                    Address::new(r, Port(1)),
                    FlowId(100 + u64::from(i)),
                ))),
            );
            sinks.push(sink);
        }
        sim.run_until(SimTime::from_secs(80.0));
        let rates: Vec<f64> = sinks
            .iter()
            .map(|&s| sim.agent::<TcpSink>(s).unwrap().meter().average_between(30.0, 78.0))
            .collect();
        prop_assert!(rates.iter().all(|&r| r > 1_000.0), "a flow starved: {rates:?}");
        let j = jain(&rates);
        prop_assert!(j >= 0.9, "two TCP flows should share fairly, Jain {j} ({rates:?})");
    }
}
