//! The TFMCC receiver bound to the simulator.

use std::any::Any;

use netsim::packet::{Address, Dest, FlowId, GroupId, Packet, Payload};
use netsim::sim::{Agent, Context, TimerId};
use netsim::stats::ThroughputMeter;

use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::{DataPacket, FeedbackPacket, ReceiverId};
use tfmcc_proto::receiver::TfmccReceiver;

/// Timer token for the (single) protocol feedback timer; the generation is
/// added so stale timers are recognised.
const FEEDBACK_TOKEN_BASE: u64 = 1 << 32;
/// Timer token for the deferred group join.
const JOIN_TOKEN: u64 = 1;
/// Timer token for the scheduled leave.
const LEAVE_TOKEN: u64 = 2;

/// Runs a [`TfmccReceiver`] inside the simulator: it joins the multicast
/// group (optionally at a later time), feeds arriving data packets into the
/// protocol receiver, transmits the resulting reports to the sender as
/// unicast packets and keeps the simulator timer in sync with the receiver's
/// single feedback deadline.
///
/// A receiver can also **churn**: repeatedly stay in the session for a
/// while, leave (announcing the departure), and rejoin later with fresh
/// protocol state — the workload of the `fig22_churn` scenario.
pub struct TfmccReceiverAgent {
    receiver: TfmccReceiver,
    id: ReceiverId,
    config: TfmccConfig,
    sender_addr: Address,
    group: GroupId,
    flow: FlowId,
    /// Cached `tfmcc.feedback_sent.flow.<flow>` counter name, so the
    /// per-report stats update does not format (and heap-allocate) a fresh
    /// key every time.
    flow_counter: String,
    join_at: f64,
    leave_at: Option<f64>,
    /// `(on_secs, off_secs)`: after each join, leave `on_secs` later and
    /// rejoin `off_secs` after that, indefinitely.
    churn: Option<(f64, f64)>,
    /// Number of join/leave transitions performed so far.
    membership_changes: u64,
    left: bool,
    meter: ThroughputMeter,
    armed: Option<(TimerId, f64)>,
    generation: u64,
}

impl TfmccReceiverAgent {
    /// Creates the agent; the protocol receiver is built from `id` and
    /// `config` (and rebuilt from them on every churn rejoin).  Reports are
    /// unicast to `sender_addr`; received data is attributed to `flow` in
    /// the local throughput meter.
    pub fn new(
        id: ReceiverId,
        config: TfmccConfig,
        sender_addr: Address,
        group: GroupId,
        flow: FlowId,
    ) -> Self {
        TfmccReceiverAgent {
            receiver: TfmccReceiver::new(id, config.clone()),
            id,
            config,
            sender_addr,
            group,
            flow_counter: format!("tfmcc.feedback_sent.flow.{}", flow.0),
            flow,
            join_at: 0.0,
            leave_at: None,
            churn: None,
            membership_changes: 0,
            left: false,
            meter: ThroughputMeter::new(1.0),
            armed: None,
            generation: 0,
        }
    }

    /// Joins the multicast group only at `t` seconds of simulation time
    /// (before that the receiver gets no data).
    pub fn joining_at(mut self, t: f64) -> Self {
        self.join_at = t;
        self
    }

    /// Leaves the session at `t` seconds of simulation time, announcing the
    /// departure to the sender.  Mutually exclusive with
    /// [`TfmccReceiverAgent::churning`].
    pub fn leaving_at(mut self, t: f64) -> Self {
        assert!(
            self.churn.is_none(),
            "leaving_at and churning are exclusive"
        );
        self.leave_at = Some(t);
        self
    }

    /// Makes the receiver churn: after each join it stays for `on_secs`,
    /// leaves (announcing the departure to the sender), waits `off_secs`
    /// and rejoins with fresh protocol state.  Mutually exclusive with
    /// [`TfmccReceiverAgent::leaving_at`].
    pub fn churning(mut self, on_secs: f64, off_secs: f64) -> Self {
        assert!(
            on_secs > 0.0 && off_secs > 0.0,
            "churn on/off periods must be positive, got on={on_secs} off={off_secs}"
        );
        assert!(
            self.leave_at.is_none(),
            "leaving_at and churning are exclusive"
        );
        self.churn = Some((on_secs, off_secs));
        self
    }

    /// Number of join/leave transitions performed so far.
    pub fn membership_changes(&self) -> u64 {
        self.membership_changes
    }

    /// Uses `bin`-second bins for the local throughput meter.
    pub fn with_meter_bin(mut self, bin: f64) -> Self {
        self.meter = ThroughputMeter::new(bin);
        self
    }

    /// The wrapped protocol receiver.
    pub fn protocol(&self) -> &TfmccReceiver {
        &self.receiver
    }

    /// Throughput meter over the data this receiver got.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    fn send_feedback(&self, ctx: &mut Context<'_>, fb: FeedbackPacket) {
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Unicast(self.sender_addr),
            FeedbackPacket::WIRE_SIZE,
            self.flow,
            Payload::new(fb),
        );
        ctx.send(pkt);
    }

    /// Re-arms the simulator timer to match the receiver's single feedback
    /// deadline.
    fn sync_timer(&mut self, ctx: &mut Context<'_>) {
        let desired = self.receiver.next_timer();
        match (desired, self.armed) {
            (Some(at), Some((_, armed_at))) if (at - armed_at).abs() < 1e-9 => {}
            (Some(at), maybe_armed) => {
                if let Some((id, _)) = maybe_armed {
                    ctx.cancel(id);
                }
                self.generation += 1;
                let delay = (at - ctx.now().as_secs()).max(0.0);
                let id = ctx.schedule(delay, FEEDBACK_TOKEN_BASE + self.generation);
                self.armed = Some((id, at));
            }
            (None, Some((id, _))) => {
                ctx.cancel(id);
                self.armed = None;
            }
            (None, None) => {}
        }
    }
}

impl Agent for TfmccReceiverAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let join_delay = (self.join_at - ctx.now().as_secs()).max(0.0);
        ctx.schedule(join_delay, JOIN_TOKEN);
        if let Some(leave_at) = self.leave_at {
            let leave_delay = (leave_at - ctx.now().as_secs()).max(0.0);
            ctx.schedule(leave_delay, LEAVE_TOKEN);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == JOIN_TOKEN {
            if self.left {
                if self.churn.is_none() {
                    // One-shot leave already happened (leave_at < join_at):
                    // the receiver never enters the session.
                    return;
                }
                // Churn rejoin: start over with fresh protocol state, as a
                // receiver re-entering the session would.
                self.receiver = TfmccReceiver::new(self.id, self.config.clone());
                self.left = false;
            }
            ctx.join_group(self.group);
            self.membership_changes += 1;
            if let Some((on_secs, _)) = self.churn {
                ctx.schedule(on_secs, LEAVE_TOKEN);
            }
            return;
        }
        if token == LEAVE_TOKEN {
            self.left = true;
            ctx.leave_group(self.group);
            self.membership_changes += 1;
            let fb = self.receiver.leave(ctx.now().as_secs());
            self.send_feedback(ctx, fb);
            if let Some((id, _)) = self.armed.take() {
                ctx.cancel(id);
            }
            if let Some((_, off_secs)) = self.churn {
                ctx.schedule(off_secs, JOIN_TOKEN);
            }
            return;
        }
        if token != FEEDBACK_TOKEN_BASE + self.generation || self.left {
            return; // stale feedback timer
        }
        self.armed = None;
        if let Some(fb) = self.receiver.on_timer(ctx.now().as_secs()) {
            self.send_feedback(ctx, fb);
            ctx.stats().add("tfmcc.feedback_sent", 1.0);
            ctx.stats().add(&self.flow_counter, 1.0);
        }
        self.sync_timer(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if self.left {
            return;
        }
        let Some(data) = packet.payload.downcast_ref::<DataPacket>() else {
            return;
        };
        self.meter.record(ctx.now(), u64::from(packet.size));
        let now = ctx.now().as_secs();
        if let Some(fb) = self.receiver.on_data(now, data) {
            self.send_feedback(ctx, fb);
            ctx.stats().add("tfmcc.feedback_sent", 1.0);
            ctx.stats().add(&self.flow_counter, 1.0);
        }
        self.sync_timer(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
