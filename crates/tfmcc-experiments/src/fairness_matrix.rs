//! Figure 24 (beyond the paper): cross-protocol fairness matrix over AQM
//! bottlenecks.
//!
//! The paper evaluates TFMCC against TCP only (Figures 9, 10, 21); this
//! scenario completes the competitive picture by running every pairing of
//! **TFMCC, PGMCC, TFRC and TCP** — plus a four-way melee — through one
//! shared bottleneck and reporting Jain's fairness index and per-flow rates
//! for each matchup.  The bottleneck queue discipline is pluggable: gentle
//! RED by default, with `TFMCC_QUEUE` (exported by the shared CLI's
//! `--queue` flag) selecting `drop-tail`, `red`, `gentle-red` or `codel`.
//!
//! A second leg re-runs the paper's feedback-robustness shape (Figure 19:
//! lossy return paths, here with an additional asymmetric leg) under the
//! same AQM discipline with a hybrid receiver population of 10⁵ receivers,
//! anchoring the AQM code path at the population scale the roadmap names.
//!
//! TFMCC flows are wired by [`SessionManager`]; the competitor flows draw
//! their group/port/flow assignments from
//! [`SessionManager::reserve_addressing`], so a mixed-protocol simulation
//! cannot alias multicast groups or ports.

use netsim::prelude::*;
use tfmcc_agents::manager::{jain_index, SessionId, SessionManager, SessionSpec};
use tfmcc_agents::population::{FluidSpec, PopulationSpec};
use tfmcc_agents::session::TfmccSessionBuilder;
use tfmcc_model::population::Dist;
use tfmcc_pgmcc::{PgmccReceiverAgent, PgmccSenderAgent};
use tfmcc_runner::{Sweep, SweepRunner};
use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};
use tfmcc_tfrc::{TfrcSession, TfrcSessionBuilder};

use crate::fairness_figs::meter_series;
use crate::output::{Figure, Series};
use crate::scale::Scale;

/// The protocols competing in the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Multi-rate-free single-rate multicast congestion control (the paper).
    Tfmcc,
    /// Window-based multicast congestion control driven by the acker.
    Pgmcc,
    /// Unicast equation-based rate control (TFMCC's unicast ancestor).
    Tfrc,
    /// TCP Reno.
    Tcp,
}

impl Proto {
    /// All protocols, in matrix order.
    pub const ALL: [Proto; 4] = [Proto::Tfmcc, Proto::Pgmcc, Proto::Tfrc, Proto::Tcp];

    /// Short lower-case name used in series labels and notes.
    pub fn name(self) -> &'static str {
        match self {
            Proto::Tfmcc => "tfmcc",
            Proto::Pgmcc => "pgmcc",
            Proto::Tfrc => "tfrc",
            Proto::Tcp => "tcp",
        }
    }
}

/// The scenario list: every unordered pairing (same-protocol pairs
/// included) followed by the four-way melee.
pub fn pairings() -> Vec<Vec<Proto>> {
    let mut list = Vec::new();
    for i in 0..Proto::ALL.len() {
        for j in i..Proto::ALL.len() {
            list.push(vec![Proto::ALL[i], Proto::ALL[j]]);
        }
    }
    list.push(Proto::ALL.to_vec());
    list
}

/// The bottleneck queue discipline of the run, honouring the `TFMCC_QUEUE`
/// override (exported by the shared CLI's `--queue` flag).  Defaults to
/// gentle RED — the figure exists to exercise AQM, so drop-tail is the
/// opt-in, not the default.
pub fn bottleneck_queue(limit_packets: usize) -> (&'static str, QueueDiscipline) {
    match std::env::var("TFMCC_QUEUE").as_deref() {
        Ok("drop-tail") => ("drop-tail", QueueDiscipline::drop_tail(limit_packets)),
        Ok("red") => ("red", QueueDiscipline::red(limit_packets)),
        Ok("codel") => ("codel", QueueDiscipline::codel(limit_packets)),
        Ok("gentle-red") | Err(_) => ("gentle-red", QueueDiscipline::red_gentle(limit_packets)),
        Ok(other) => {
            eprintln!(
                "warning: ignoring invalid TFMCC_QUEUE value '{other}' \
                 (use drop-tail, red, gentle-red or codel)"
            );
            ("gentle-red", QueueDiscipline::red_gentle(limit_packets))
        }
    }
}

/// Handle to one competing flow, uniform over the four protocols.
enum FlowHandle {
    Tfmcc(SessionId),
    Pgmcc(AgentId),
    Tfrc(TfrcSession),
    Tcp(AgentId),
}

impl FlowHandle {
    /// Average delivered throughput over `[from, to]`, bytes/second.
    fn rate(&self, sim: &Simulator, manager: &SessionManager, from: f64, to: f64) -> f64 {
        match self {
            FlowHandle::Tfmcc(id) => manager.session_throughput(sim, *id, from, to),
            FlowHandle::Pgmcc(receiver) => sim
                .agent::<PgmccReceiverAgent>(*receiver)
                .expect("pgmcc receiver exists")
                .meter()
                .average_between(from, to),
            FlowHandle::Tfrc(session) => session.throughput(sim, from, to),
            FlowHandle::Tcp(sink) => sim
                .agent::<TcpSink>(*sink)
                .expect("tcp sink exists")
                .meter()
                .average_between(from, to),
        }
    }

    /// Delivered-rate trace as a `(time, kbit/s)` series.
    fn trace(&self, sim: &Simulator, manager: &SessionManager) -> Vec<(f64, f64)> {
        match self {
            FlowHandle::Tfmcc(id) => meter_series(manager.receiver_agent(sim, *id, 0).meter()),
            FlowHandle::Pgmcc(receiver) => meter_series(
                sim.agent::<PgmccReceiverAgent>(*receiver)
                    .expect("pgmcc receiver exists")
                    .meter(),
            ),
            FlowHandle::Tfrc(session) => {
                meter_series(session.as_tfmcc().receiver_agent(sim, 0).meter())
            }
            FlowHandle::Tcp(sink) => meter_series(
                sim.agent::<TcpSink>(*sink)
                    .expect("tcp sink exists")
                    .meter(),
            ),
        }
    }
}

/// Deterministic result of one matrix point.
struct MatrixOutcome {
    label: String,
    jain: f64,
    /// Per-flow steady-state rate in kbit/s, flow order.
    rates_kbit: Vec<f64>,
    /// `(protocol name, (time, kbit/s) trace)` per flow, flow order.
    traces: Vec<(String, Vec<(f64, f64)>)>,
}

/// Builds and runs one shared-bottleneck simulation with one flow per entry
/// of `protos` — a dumbbell whose 8 Mbit/s core runs the selected AQM
/// discipline while every flow keeps its own clean access links.
fn run_matrix_point(protos: &[Proto], seed: u64, duration: f64) -> MatrixOutcome {
    let (_, queue) = bottleneck_queue(50);
    let mut sim = Simulator::new(seed);
    let left = sim.add_node("left");
    let right = sim.add_node("right");
    sim.add_duplex_link(left, right, 1_000_000.0, 0.02, queue);

    let mut manager = SessionManager::new();
    let mut handles: Vec<FlowHandle> = Vec::new();
    for (i, &proto) in protos.iter().enumerate() {
        let sender = sim.add_node(&format!("s{i}"));
        let receiver = sim.add_node(&format!("r{i}"));
        sim.add_duplex_link(
            sender,
            left,
            1_250_000.0,
            0.005,
            QueueDiscipline::drop_tail(60),
        );
        sim.add_duplex_link(
            right,
            receiver,
            1_250_000.0,
            0.005 + 0.002 * (i % 4) as f64,
            QueueDiscipline::drop_tail(60),
        );
        let handle = match proto {
            Proto::Tfmcc => {
                let id = manager.add_population_session(
                    &mut sim,
                    &SessionSpec::default(),
                    sender,
                    &[PopulationSpec::packet(receiver)],
                );
                FlowHandle::Tfmcc(id)
            }
            Proto::Pgmcc => {
                let addr = manager.reserve_addressing();
                let sender_agent = sim.add_agent(
                    sender,
                    addr.sender_port,
                    Box::new(PgmccSenderAgent::new(
                        addr.group,
                        addr.data_port,
                        addr.flow,
                        1000,
                    )),
                );
                let sender_addr = sim.agent_addr(sender_agent);
                let receiver_agent = sim.add_agent(
                    receiver,
                    addr.data_port,
                    Box::new(PgmccReceiverAgent::new(
                        1,
                        sender_addr,
                        addr.group,
                        addr.flow,
                    )),
                );
                FlowHandle::Pgmcc(receiver_agent)
            }
            Proto::Tfrc => {
                let addr = manager.reserve_addressing();
                let session = TfrcSessionBuilder {
                    flow: addr.flow,
                    data_port: addr.data_port,
                    sender_port: addr.sender_port,
                    group: addr.group,
                    ..TfrcSessionBuilder::default()
                }
                .build(&mut sim, sender, receiver);
                FlowHandle::Tfrc(session)
            }
            Proto::Tcp => {
                let addr = manager.reserve_addressing();
                let sink = sim.add_agent(receiver, addr.data_port, Box::new(TcpSink::new(1.0)));
                sim.add_agent(
                    sender,
                    addr.sender_port,
                    Box::new(TcpSender::new(TcpSenderConfig::new(
                        Address::new(receiver, addr.data_port),
                        addr.flow,
                    ))),
                );
                FlowHandle::Tcp(sink)
            }
        };
        handles.push(handle);
    }
    sim.run_until(SimTime::from_secs(duration));

    let from = duration * 0.3;
    let to = duration - 2.0;
    let rates: Vec<f64> = handles
        .iter()
        .map(|h| h.rate(&sim, &manager, from, to))
        .collect();
    MatrixOutcome {
        label: protos
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+"),
        jain: jain_index(rates.iter().copied()),
        rates_kbit: rates.iter().map(|&r| r * 8.0 / 1000.0).collect(),
        traces: protos
            .iter()
            .zip(&handles)
            .map(|(p, h)| (p.name().to_string(), h.trace(&sim, &manager)))
            .collect(),
    }
}

/// Deterministic result of the AQM robustness leg.
struct RobustnessOutcome {
    tfmcc_kbit: f64,
    population: u64,
    trace: Vec<(f64, f64)>,
}

/// The Figure 19 shape under AQM at population scale: a four-leg star whose
/// legs run the selected discipline, with 0/10/20/30 % feedback loss on the
/// return paths, one asymmetric (slow, long) feedback path, a competing TCP
/// flow per leg and a hybrid fluid population carrying the receiver count
/// to 10⁵.
fn run_aqm_robustness(seed: u64, fluid_bulk: u64, duration: f64) -> RobustnessOutcome {
    let (_, leg_queue) = bottleneck_queue(40);
    let mut sim = Simulator::new(seed);
    let reverse_loss = [0.0, 0.1, 0.2, 0.3];
    let legs: Vec<StarLeg> = (0..4)
        .map(|i| {
            let mut leg = StarLeg::clean(250_000.0, 0.02).with_queue(leg_queue.clone());
            if reverse_loss[i] > 0.0 {
                leg = leg.with_upstream_loss(reverse_loss[i]);
            }
            if i == 3 {
                // One leg also feeds back over a slow, long path — the
                // asymmetric-topology case of the robustness story.
                leg = leg.with_upstream_path(31_250.0, 0.08);
            }
            leg
        })
        .collect();
    let star = star(&mut sim, &StarConfig::default(), &legs);
    let mut populations: Vec<PopulationSpec> = star
        .receivers
        .iter()
        .map(|&n| PopulationSpec::packet(n))
        .collect();
    let fluid_node = sim.add_node("fluid");
    sim.add_duplex_link(
        star.hub,
        fluid_node,
        12_500_000.0,
        0.005,
        QueueDiscipline::drop_tail(60),
    );
    populations.push(PopulationSpec::Fluid(FluidSpec::new(
        fluid_node,
        fluid_bulk,
        Dist::Uniform {
            lo: 0.001,
            hi: 0.01,
        },
        Dist::Uniform { lo: 0.02, hi: 0.06 },
    )));
    let session =
        TfmccSessionBuilder::default().build_population(&mut sim, star.sender, &populations);
    // A forward TCP flow per leg provides the competing traffic, as in
    // Figure 19.
    for (i, &r) in star.receivers.iter().enumerate() {
        sim.add_agent(r, Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            star.sender,
            Port(100 + i as u16),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(r, Port(1)),
                FlowId(3000 + i as u64),
            ))),
        );
    }
    sim.run_until(SimTime::from_secs(duration));

    let warm = duration * 0.4;
    let meter = session.receiver_agent(&sim, 0).meter();
    RobustnessOutcome {
        tfmcc_kbit: meter.average_between(warm, duration - 2.0) * 8.0 / 1000.0,
        population: session.sender_agent(&sim).protocol().session_population(),
        trace: meter_series(meter),
    }
}

/// Figure 24: the cross-protocol fairness matrix over an AQM bottleneck,
/// plus the Figure 19 robustness shape under the same discipline at 10⁵
/// receivers.
pub fn fig24_fairness_matrix(runner: &SweepRunner, scale: Scale) -> Figure {
    let duration = scale.pick(40.0, 120.0);
    let (queue_name, _) = bottleneck_queue(50);
    let scenarios = pairings();
    let sweep = Sweep::new("fig24", 2424, scenarios);
    let outcomes = runner.run(&sweep, |pt| run_matrix_point(pt.value, pt.seed, duration));

    let mut fig = Figure::new(
        "fig24",
        format!("Cross-protocol fairness matrix over an 8 Mbit/s {queue_name} bottleneck"),
        "pairing index",
        "Jain index / rate (kbit/s)",
    );
    fig.push_series(Series::new(
        "Jain index",
        outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| (i as f64, o.jain))
            .collect(),
    ));
    fig.push_series(Series::new(
        "min flow rate (kbit/s)",
        outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                (
                    i as f64,
                    o.rates_kbit.iter().cloned().fold(f64::MAX, f64::min),
                )
            })
            .collect(),
    ));
    fig.push_series(Series::new(
        "max flow rate (kbit/s)",
        outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| (i as f64, o.rates_kbit.iter().cloned().fold(0.0, f64::max)))
            .collect(),
    ));
    // Rate traces of the four-way melee, fig23 style.
    if let Some(melee) = outcomes.last() {
        for (name, trace) in &melee.traces {
            fig.push_series(Series::new(format!("melee {name} (kbit/s)"), trace.clone()));
        }
    }
    for (i, o) in outcomes.iter().enumerate() {
        let rates = o
            .rates_kbit
            .iter()
            .map(|r| format!("{r:.0}"))
            .collect::<Vec<_>>()
            .join("/");
        fig.note(format!(
            "[{i}] {} over {queue_name}: Jain {:.3}, rates {rates} kbit/s",
            o.label, o.jain
        ));
    }

    // The AQM robustness leg: fig19's lossy/asymmetric feedback paths under
    // the same queue discipline, with a hybrid population of 10⁵ receivers.
    let fluid_bulk = scale.pick(100_000u64, 1_000_000);
    let robustness_sweep = Sweep::new("fig24/aqm-robustness", 24_242, vec![()]);
    let robustness = runner
        .run(&robustness_sweep, |pt| {
            run_aqm_robustness(pt.seed, fluid_bulk, duration)
        })
        .pop()
        .expect("one-point sweep yields one outcome");
    fig.push_series(Series::new(
        "AQM robustness TFMCC (kbit/s)",
        robustness.trace.clone(),
    ));
    fig.note(format!(
        "AQM robustness (fig19 shape, {queue_name} legs, lossy + asymmetric feedback paths): \
         TFMCC {:.0} kbit/s steady state with a session population of {} receivers",
        robustness.tfmcc_kbit, robustness.population
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_fig() -> Figure {
        fig24_fairness_matrix(&SweepRunner::new(2), Scale::Quick)
    }

    #[test]
    fn fig24_covers_every_pairing_plus_the_melee() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_QUEUE");
        let fig = quick_fig();
        let jain = fig.series("Jain index").unwrap();
        assert_eq!(
            jain.points.len(),
            11,
            "10 unordered pairings plus the 4-way melee"
        );
        for &(i, j) in &jain.points {
            assert!(j <= 1.0 + 1e-12, "Jain out of range at {i}: {j}");
            assert!(
                j > 0.9,
                "all four protocols answer loss with TCP-model rates, so \
                 every pairing should share fairly — Jain {j} at {i}"
            );
        }
        let min = fig.series("min flow rate (kbit/s)").unwrap();
        for &(i, kbit) in &min.points {
            assert!(kbit > 100.0, "a flow starved in pairing {i}: {kbit} kbit/s");
        }
        // The melee contributes one trace per protocol.
        for p in Proto::ALL {
            assert!(
                fig.series(&format!("melee {} (kbit/s)", p.name()))
                    .is_some(),
                "missing melee trace for {}",
                p.name()
            );
        }
    }

    #[test]
    fn fig24_same_protocol_pairings_share_fairly() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_QUEUE");
        let fig = quick_fig();
        let jain = fig.series("Jain index").unwrap();
        // Scenario list order: index of the X+X pairing of protocol i is
        // the position of (i, i) in the i ≤ j enumeration.
        let same = [0usize, 4, 7, 9];
        for (p, &idx) in Proto::ALL.iter().zip(&same) {
            let (_, j) = jain.points[idx];
            assert!(
                j >= 0.9,
                "two {} flows should converge to Jain >= 0.9, got {j}",
                p.name()
            );
        }
    }

    #[test]
    fn fig24_robustness_leg_reaches_population_scale() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_QUEUE");
        let fig = quick_fig();
        let note = fig
            .summary
            .iter()
            .find(|n| n.contains("AQM robustness"))
            .expect("robustness note present");
        let population: u64 = note
            .split("population of ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .and_then(|n| n.parse().ok())
            .expect("note reports the session population");
        assert!(
            population >= 100_000,
            "hybrid population should reach 10^5 receivers: {note}"
        );
        let trace = fig.series("AQM robustness TFMCC (kbit/s)").unwrap();
        assert!(!trace.points.is_empty());
    }

    #[test]
    fn fig24_is_thread_count_invariant() {
        let _guard = crate::scale::env_lock();
        std::env::remove_var("TFMCC_QUEUE");
        let serial = fig24_fairness_matrix(&SweepRunner::new(1), Scale::Quick);
        let parallel = fig24_fairness_matrix(&SweepRunner::new(4), Scale::Quick);
        assert_eq!(serial.to_json().render(), parallel.to_json().render());
    }

    #[test]
    fn queue_env_override_selects_the_discipline() {
        let _guard = crate::scale::env_lock();
        std::env::set_var("TFMCC_QUEUE", "drop-tail");
        assert_eq!(bottleneck_queue(10).0, "drop-tail");
        std::env::set_var("TFMCC_QUEUE", "codel");
        assert_eq!(bottleneck_queue(10).0, "codel");
        std::env::set_var("TFMCC_QUEUE", "wheel");
        assert_eq!(bottleneck_queue(10).0, "gentle-red");
        std::env::remove_var("TFMCC_QUEUE");
        assert_eq!(bottleneck_queue(10).0, "gentle-red");
    }
}
