//! Benchmarks regenerating the scaling figures (paper Figures 7 and 17) and
//! the underlying order-statistics / expectation computations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tfmcc_experiments::{scaling_figs, Scale, SweepRunner};
use tfmcc_model::{expected_min_gamma, expected_responses, scaling_degradation};

fn bench_scaling_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_figures");
    group.sample_size(10);
    group.bench_function("fig07_scaling_quick", |b| {
        b.iter(|| {
            black_box(scaling_figs::fig07_scaling(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig17_loss_events_per_rtt", |b| {
        b.iter(|| {
            black_box(scaling_figs::fig17_loss_events_per_rtt(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.finish();
}

fn bench_order_statistics(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_statistics");
    for &n in &[10u64, 1000, 100_000] {
        group.bench_with_input(BenchmarkId::new("expected_min_gamma", n), &n, |b, &n| {
            b.iter(|| black_box(expected_min_gamma(n, 8.0, 1.25)))
        });
    }
    group.bench_function("scaling_degradation_n10000", |b| {
        b.iter(|| black_box(scaling_degradation(10_000, 8, 0.1, 0.05, 1000.0)))
    });
    group.bench_function("expected_responses_n10000", |b| {
        b.iter(|| black_box(expected_responses(10_000, 10_000.0, 4.0, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_scaling_figures, bench_order_statistics);
criterion_main!(benches);
