//! Sweep descriptions: a named list of points plus the common parameter
//! grid over receiver count, loss rate, RTT and seed replicas.

use crate::seed::derive_seed;

/// A named sweep: an ordered list of points and a base seed from which every
/// point's RNG seed is derived.
///
/// The point type is caller-defined — use [`ParamGrid`] to build the common
/// receiver-count × loss-rate × RTT × replica grid, or pass any `Vec` of
/// scenario descriptions.
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    name: String,
    base_seed: u64,
    points: Vec<P>,
}

impl<P> Sweep<P> {
    /// Creates a sweep from explicit points.
    pub fn new(name: impl Into<String>, base_seed: u64, points: Vec<P>) -> Self {
        Sweep {
            name: name.into(),
            base_seed,
            points,
        }
    }

    /// The sweep's name (used for progress records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base seed all point seeds are derived from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The points, in sweep order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The deterministic seed of point `index`.
    pub fn seed_for(&self, index: usize) -> u64 {
        derive_seed(self.base_seed, index as u64)
    }
}

/// One point of a [`ParamGrid`]: a concrete parameter assignment plus the
/// replica number for seed-replicated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Number of receivers in this run.
    pub receivers: usize,
    /// Per-receiver loss rate.
    pub loss_rate: f64,
    /// Round-trip time in seconds.
    pub rtt: f64,
    /// Replica index in `0..replicas`; each replica gets its own seed, so
    /// replicas of the same parameter assignment are independent trials.
    pub replica: usize,
}

/// Builder for the common experiment parameter grid.
///
/// Axes left unset collapse to a single default value (1 receiver, zero
/// loss, zero RTT, one replica), so a sweep over just receiver counts is
/// `ParamGrid::new().receivers(ns).build(..)`.  The cartesian product is
/// enumerated receivers-major, then loss rate, then RTT, then replica —
/// the ordering is part of the reproducibility contract because point seeds
/// are derived from point indices.
#[derive(Debug, Clone)]
pub struct ParamGrid {
    receivers: Vec<usize>,
    loss_rates: Vec<f64>,
    rtts: Vec<f64>,
    replicas: usize,
}

impl Default for ParamGrid {
    fn default() -> Self {
        ParamGrid {
            receivers: vec![1],
            loss_rates: vec![0.0],
            rtts: vec![0.0],
            replicas: 1,
        }
    }
}

impl ParamGrid {
    /// Creates a grid with all axes at their defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the receiver-count axis.
    pub fn receivers(mut self, counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "receivers axis must be non-empty");
        self.receivers = counts;
        self
    }

    /// Sets the loss-rate axis.
    pub fn loss_rates(mut self, rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "loss-rate axis must be non-empty");
        self.loss_rates = rates;
        self
    }

    /// Sets the RTT axis (seconds).
    pub fn rtts(mut self, rtts: Vec<f64>) -> Self {
        assert!(!rtts.is_empty(), "RTT axis must be non-empty");
        self.rtts = rtts;
        self
    }

    /// Sets the number of seed replicas per parameter assignment.
    pub fn replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        self.replicas = replicas;
        self
    }

    /// Number of points the grid will enumerate.
    pub fn len(&self) -> usize {
        self.receivers.len() * self.loss_rates.len() * self.rtts.len() * self.replicas
    }

    /// Whether the grid is empty (never true: axes are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cartesian product into a [`Sweep`].
    pub fn build(self, name: impl Into<String>, base_seed: u64) -> Sweep<GridPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &receivers in &self.receivers {
            for &loss_rate in &self.loss_rates {
                for &rtt in &self.rtts {
                    for replica in 0..self.replicas {
                        points.push(GridPoint {
                            receivers,
                            loss_rate,
                            rtt,
                            replica,
                        });
                    }
                }
            }
        }
        Sweep::new(name, base_seed, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_cartesian_product_in_order() {
        let sweep = ParamGrid::new()
            .receivers(vec![1, 10])
            .loss_rates(vec![0.01, 0.1])
            .replicas(2)
            .build("g", 3);
        assert_eq!(sweep.len(), 8);
        let p = sweep.points();
        // receivers-major, then loss rate, then replica.
        assert_eq!((p[0].receivers, p[0].loss_rate, p[0].replica), (1, 0.01, 0));
        assert_eq!((p[1].receivers, p[1].loss_rate, p[1].replica), (1, 0.01, 1));
        assert_eq!((p[2].receivers, p[2].loss_rate, p[2].replica), (1, 0.1, 0));
        assert_eq!(
            (p[4].receivers, p[4].loss_rate, p[4].replica),
            (10, 0.01, 0)
        );
        assert_eq!((p[7].receivers, p[7].loss_rate, p[7].replica), (10, 0.1, 1));
    }

    #[test]
    fn point_seeds_are_stable_and_distinct() {
        let sweep = Sweep::new("s", 11, vec![(); 64]);
        let seeds: Vec<u64> = (0..sweep.len()).map(|i| sweep.seed_for(i)).collect();
        let again: Vec<u64> = (0..sweep.len()).map(|i| sweep.seed_for(i)).collect();
        assert_eq!(seeds, again, "seeds must be stable");
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "points {i} and {j} share a seed");
            }
        }
    }

    #[test]
    fn default_axes_collapse_to_one_point() {
        let sweep = ParamGrid::new().build("one", 0);
        assert_eq!(sweep.len(), 1);
        assert!(!sweep.is_empty());
    }
}
