//! The TFMCC receiver state machine (sans-I/O).
//!
//! The receiver consumes data packets (plus a clock) and produces feedback
//! packets and a single pending feedback-timer deadline.  Adapters drive it
//! with three calls:
//!
//! * [`TfmccReceiver::on_data`] whenever a data packet arrives — may return a
//!   feedback packet to transmit immediately (the CLR reports without
//!   suppression);
//! * [`TfmccReceiver::next_timer`] after every call, to (re)arm the single
//!   feedback timer;
//! * [`TfmccReceiver::on_timer`] when that timer fires — may return a
//!   feedback packet.
//!
//! All times are seconds on the receiver's local clock; sender timestamps
//! found in packets are never compared against the local clock directly
//! (only differences are used), so clock skew is harmless.
//!
//! # Hot path
//!
//! [`TfmccReceiver::on_data`] is the per-packet path: at 10⁵ receivers a
//! single simulation calls it hundreds of millions of times.  It performs
//! **zero heap allocations in steady state** — the loss history and the
//! receive-rate meter recycle preallocated rings, and the weighted-average
//! computation iterates in place (see `loss.rs` / `rate_meter.rs`).  The
//! allocation-counting test in `tests/alloc_count.rs` pins this.

use std::hash::Hasher;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use tfmcc_model::throughput::padhye_throughput;

use crate::config::TfmccConfig;
use crate::feedback::FeedbackPlanner;
use crate::loss::LossHistory;
use crate::packets::{DataPacket, FeedbackPacket, ReceiverId};
use crate::rate_meter::ReceiveRateMeter;
use crate::rtt::RttEstimator;
use crate::step::{hash_f64, StateFingerprint};

/// A pending (not yet fired, not yet cancelled) feedback timer.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingFeedback {
    fire_at: f64,
    round: u64,
}

/// Statistics a receiver accumulates, exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReceiverStats {
    /// Data packets received.
    pub data_packets: u64,
    /// Feedback packets sent.
    pub feedback_sent: u64,
    /// Feedback timers cancelled by suppression.
    pub feedback_suppressed: u64,
    /// Real RTT measurements made.
    pub rtt_measurements: u64,
}

/// The TFMCC receiver.
#[derive(Debug, Clone)]
pub struct TfmccReceiver {
    id: ReceiverId,
    config: TfmccConfig,
    planner: FeedbackPlanner,
    loss: LossHistory,
    rtt: RttEstimator,
    recv_meter: ReceiveRateMeter,
    rng: SmallRng,
    /// Mirror of sender-advertised state from the most recent data packet.
    sender_rate: f64,
    max_rtt: f64,
    slowstart: bool,
    is_clr: bool,
    current_round: u64,
    seen_any_data: bool,
    /// Pending feedback timer, if any.
    timer: Option<PendingFeedback>,
    /// Whether feedback has already been sent in the current round.
    sent_this_round: bool,
    /// Whether this round's feedback was suppressed by an echoed report.
    suppressed_this_round: bool,
    /// Next time the CLR sends its unsuppressed periodic report.
    next_clr_report_at: f64,
    /// Sender timestamp and local arrival time of the most recent data
    /// packet, echoed back in feedback for sender-side RTT measurement.
    last_data_timestamp: f64,
    last_data_arrival: f64,
    stats: ReceiverStats,
}

impl TfmccReceiver {
    /// Creates a receiver with the given session-unique id.
    pub fn new(id: ReceiverId, config: TfmccConfig) -> Self {
        config.validate().expect("invalid TFMCC configuration");
        let planner = FeedbackPlanner::from_config(&config);
        let loss = LossHistory::new(&config);
        let rtt = RttEstimator::new(&config);
        let recv_meter = ReceiveRateMeter::new(2.0 * config.initial_rtt);
        TfmccReceiver {
            id,
            planner,
            loss,
            rtt,
            recv_meter,
            rng: SmallRng::seed_from_u64(id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            sender_rate: config.initial_rate(),
            max_rtt: config.initial_rtt,
            slowstart: true,
            is_clr: false,
            current_round: 0,
            seen_any_data: false,
            timer: None,
            sent_this_round: false,
            suppressed_this_round: false,
            next_clr_report_at: 0.0,
            last_data_timestamp: 0.0,
            last_data_arrival: 0.0,
            stats: ReceiverStats::default(),
            config,
        }
    }

    /// This receiver's id.
    pub fn id(&self) -> ReceiverId {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Current RTT estimate in seconds.
    pub fn rtt(&self) -> f64 {
        self.rtt.current()
    }

    /// True once a real RTT measurement has been made.
    pub fn has_rtt_measurement(&self) -> bool {
        self.rtt.has_measurement()
    }

    /// Current loss event rate estimate.
    pub fn loss_event_rate(&self) -> f64 {
        self.loss.loss_event_rate()
    }

    /// True if this receiver currently believes it is the CLR.
    pub fn is_clr(&self) -> bool {
        self.is_clr
    }

    /// Initialises the RTT estimate from synchronized clocks (Section 2.4.1).
    pub fn init_clock_synchronized_rtt(&mut self, one_way_delay: f64, sync_error: f64) {
        self.rtt
            .init_from_synchronized_clocks(one_way_delay, sync_error);
    }

    /// The rate this receiver calculates from the control equation, in
    /// bytes/second (`f64::INFINITY` while no loss has been observed).
    pub fn calculated_rate(&self) -> f64 {
        let p = self.loss.loss_event_rate();
        if p <= 0.0 {
            f64::INFINITY
        } else {
            padhye_throughput(f64::from(self.config.packet_size), self.rtt.current(), p)
        }
    }

    /// The deadline of the pending feedback timer, if any.  Adapters should
    /// re-read this after every [`Self::on_data`]/[`Self::on_timer`] call and
    /// arm exactly one timer for it.
    pub fn next_timer(&self) -> Option<f64> {
        self.timer.map(|t| t.fire_at)
    }

    /// Processes an arriving data packet.  Returns a feedback packet to send
    /// immediately, if any.
    pub fn on_data(&mut self, now: f64, data: &DataPacket) -> Option<FeedbackPacket> {
        self.stats.data_packets += 1;
        self.seen_any_data = true;
        self.recv_meter.record(now, data.size);
        self.last_data_timestamp = data.timestamp;
        self.last_data_arrival = now;

        // --- RTT machinery -------------------------------------------------
        let forward_owd = now - data.timestamp;
        let had_measurement = self.rtt.has_measurement();
        if let Some(echo) = &data.rtt_echo {
            if echo.receiver == self.id {
                let sample = (now - echo.echo_timestamp - echo.echo_delay).max(1e-4);
                self.rtt.on_measurement(sample, self.is_clr, forward_owd);
                self.stats.rtt_measurements += 1;
                if !had_measurement {
                    // First real measurement: correct the synthetic loss
                    // interval computed with the initial RTT (Appendix B) and
                    // shrink the receive-rate window to a couple of RTTs.
                    self.loss
                        .remodel_for_measured_rtt(self.config.initial_rtt, self.rtt.current());
                    self.recv_meter
                        .set_window((4.0 * self.rtt.current()).max(0.1));
                }
            } else {
                self.rtt.on_one_way_sample(forward_owd);
            }
        } else {
            self.rtt.on_one_way_sample(forward_owd);
        }

        // --- loss measurement ----------------------------------------------
        let update = self.loss.on_packet(data.seqno, now, self.rtt.current());
        if update.first_loss_event {
            let receive_rate = self.recv_meter.rate(now);
            self.loss.initialize_first_interval(
                receive_rate.max(f64::from(self.config.packet_size)),
                self.rtt.current(),
                !self.rtt.has_measurement(),
            );
        }

        // --- mirror sender state -------------------------------------------
        self.sender_rate = data.current_rate.max(1.0);
        self.max_rtt = data.max_rtt.max(1e-3);
        self.slowstart = data.slowstart;
        let was_clr = self.is_clr;
        self.is_clr = data.clr == Some(self.id);
        if self.is_clr && !was_clr {
            // Just became CLR: report immediately and discard any pending
            // suppression timer.
            self.timer = None;
            self.next_clr_report_at = now;
        }

        // --- feedback round handling ----------------------------------------
        if data.feedback_round != self.current_round {
            self.current_round = data.feedback_round;
            // A timer from the previous round that never got to fire (the
            // sender's rounds can be shorter than this receiver's window when
            // RTT estimates disagree) is carried into the new round rather
            // than dropped, so a limited receiver cannot be starved of
            // feedback opportunities.
            let carried = match (self.timer, self.sent_this_round) {
                (Some(pending), false) => Some(PendingFeedback {
                    fire_at: pending.fire_at,
                    round: data.feedback_round,
                }),
                _ => None,
            };
            self.sent_this_round = false;
            self.suppressed_this_round = false;
            self.timer = carried;
        }
        // (Re-)evaluate whether feedback is warranted.  This runs on every
        // data packet so a receiver whose conditions worsen mid-round still
        // arms a timer; once suppressed or sent, it stays quiet for the rest
        // of the round.
        if !self.is_clr
            && self.timer.is_none()
            && !self.sent_this_round
            && !self.suppressed_this_round
        {
            self.maybe_schedule_feedback(now);
        }

        // --- suppression ------------------------------------------------------
        if let (Some(supp), Some(pending)) = (&data.suppression, self.timer) {
            if pending.round == self.current_round && supp.receiver != self.id {
                let own = self.reportable_rate(now);
                let cancel = if self.slowstart && self.loss.has_loss() {
                    // A receiver that has experienced loss during slowstart is
                    // only suppressed by reports that also indicate loss,
                    // i.e. echoed rates below the sending rate.
                    supp.rate < self.sender_rate && self.planner.should_cancel(own, supp.rate)
                } else {
                    self.planner.should_cancel(own, supp.rate)
                };
                if cancel {
                    self.timer = None;
                    self.suppressed_this_round = true;
                    self.stats.feedback_suppressed += 1;
                }
            }
        }

        // --- CLR periodic report ---------------------------------------------
        if self.is_clr && now >= self.next_clr_report_at {
            self.next_clr_report_at = now + self.rtt.current();
            return Some(self.make_feedback(now));
        }
        None
    }

    /// Fires the pending feedback timer.  Returns the feedback packet to send
    /// if the timer was still armed for the current round.
    pub fn on_timer(&mut self, now: f64) -> Option<FeedbackPacket> {
        let pending = self.timer?;
        if now + 1e-9 < pending.fire_at {
            return None;
        }
        self.timer = None;
        if pending.round != self.current_round || self.sent_this_round {
            return None;
        }
        self.sent_this_round = true;
        Some(self.make_feedback(now))
    }

    /// Builds a leave report (explicit sign-off, paper Section 2.2).
    pub fn leave(&mut self, now: f64) -> FeedbackPacket {
        let mut fb = self.make_feedback(now);
        fb.leaving = true;
        fb
    }

    /// The rate this receiver would report right now: the calculated rate
    /// once any loss has been observed, the measured receive rate during
    /// slowstart (where no loss has occurred yet and the sender steers by the
    /// minimum receive rate).
    fn reportable_rate(&mut self, now: f64) -> f64 {
        if self.loss.has_loss() {
            self.calculated_rate()
        } else if self.slowstart {
            self.recv_meter.rate(now)
        } else {
            f64::INFINITY
        }
    }

    fn maybe_schedule_feedback(&mut self, now: f64) {
        if self.sent_this_round {
            return;
        }
        let own = self.reportable_rate(now);
        let wants_feedback = if self.slowstart {
            // During slowstart every receiver participates: the sender needs
            // the minimum receive rate; receivers that saw loss must get
            // through to terminate slowstart.
            true
        } else {
            // Normal operation: only receivers whose calculated rate is below
            // the current sending rate report.  Receivers without loss have
            // an infinite calculated rate and stay quiet.
            own < self.sender_rate
        };
        if !wants_feedback {
            return;
        }
        let ratio = (own / self.sender_rate).min(1.0);
        // The window is derived from the sender-advertised maximum RTT so that
        // every receiver (and the sender's feedback rounds) agree on `T`.
        let window = self.config.feedback_window(self.max_rtt, self.sender_rate);
        let uniform: f64 = self.rng.gen_range(1e-12..=1.0);
        let delay = self.planner.timer(ratio, window, uniform);
        self.timer = Some(PendingFeedback {
            fire_at: now + delay,
            round: self.current_round,
        });
    }

    fn make_feedback(&mut self, now: f64) -> FeedbackPacket {
        self.stats.feedback_sent += 1;
        let receive_rate = self.recv_meter.rate(now);
        FeedbackPacket {
            receiver: self.id,
            timestamp: now,
            echo_timestamp: self.last_data_timestamp,
            echo_delay: (now - self.last_data_arrival).max(0.0),
            calculated_rate: self.calculated_rate(),
            loss_event_rate: self.loss.loss_event_rate(),
            receive_rate,
            rtt: self.rtt.current(),
            has_rtt_measurement: self.rtt.has_measurement(),
            feedback_round: self.current_round,
            leaving: false,
        }
    }
}

impl StateFingerprint for TfmccReceiver {
    /// Hashes every field that influences future behaviour; the accumulated
    /// [`ReceiverStats`] are excluded (observational only).  The RNG has no
    /// state accessor, so its position in the stream is captured by cloning
    /// it and drawing two values — receivers whose generators would produce
    /// different future timers fingerprint differently.
    fn fingerprint<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.id.0);
        self.planner.fingerprint(h);
        self.loss.fingerprint(h);
        self.rtt.fingerprint(h);
        self.recv_meter.fingerprint(h);
        let mut probe = self.rng.clone();
        h.write_u64(probe.next_u64());
        h.write_u64(probe.next_u64());
        hash_f64(h, self.sender_rate);
        hash_f64(h, self.max_rtt);
        h.write_u8(self.slowstart as u8);
        h.write_u8(self.is_clr as u8);
        h.write_u64(self.current_round);
        h.write_u8(self.seen_any_data as u8);
        match self.timer {
            Some(pending) => {
                h.write_u8(1);
                hash_f64(h, pending.fire_at);
                h.write_u64(pending.round);
            }
            None => h.write_u8(0),
        }
        h.write_u8(self.sent_this_round as u8);
        h.write_u8(self.suppressed_this_round as u8);
        hash_f64(h, self.next_clr_report_at);
        hash_f64(h, self.last_data_timestamp);
        hash_f64(h, self.last_data_arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::{RttEcho, SuppressionEcho};

    fn data(seqno: u64, now: f64, round: u64, rate: f64) -> DataPacket {
        DataPacket {
            seqno,
            timestamp: now, // perfectly synchronized clocks in tests
            current_rate: rate,
            max_rtt: 0.5,
            feedback_round: round,
            slowstart: false,
            clr: None,
            rtt_echo: None,
            suppression: None,
            size: 1000,
        }
    }

    fn receiver(id: u64) -> TfmccReceiver {
        TfmccReceiver::new(ReceiverId(id), TfmccConfig::default())
    }

    #[test]
    fn no_feedback_when_rate_is_not_limiting() {
        let mut r = receiver(1);
        let mut now = 0.0;
        // Lossless stream, normal operation (not slowstart), calculated rate
        // is infinite -> never below the sending rate -> no feedback timer.
        for seq in 0..50u64 {
            let d = data(seq, now, 1, 100_000.0);
            assert!(r.on_data(now, &d).is_none());
            now += 0.01;
        }
        assert!(r.next_timer().is_none());
        assert_eq!(r.stats().feedback_sent, 0);
    }

    #[test]
    fn slowstart_schedules_feedback_each_round() {
        let mut r = receiver(2);
        let mut now = 0.0;
        let mut seq = 0u64;
        let push = |r: &mut TfmccReceiver, now: &mut f64, seq: &mut u64| {
            let mut d = data(*seq, *now, 1, 100_000.0);
            d.slowstart = true;
            r.on_data(*now, &d);
            *seq += 1;
            *now += 0.01;
        };
        for _ in 0..10 {
            push(&mut r, &mut now, &mut seq);
        }
        let fire_at = r.next_timer().expect("slowstart must schedule feedback");
        // Keep the data stream flowing until the timer deadline, as a real
        // session would, then fire it.
        while now < fire_at {
            push(&mut r, &mut now, &mut seq);
        }
        let fb = r.on_timer(fire_at.max(now)).unwrap();
        assert!(fb.receive_rate > 0.0);
        assert!(fb.calculated_rate.is_infinite());
        assert!(!fb.has_rtt_measurement);
        assert_eq!(fb.feedback_round, 1);
    }

    #[test]
    fn lossy_receiver_reports_rate_below_sending_rate() {
        let mut r = receiver(3);
        let mut now = 0.0;
        let mut seq = 0u64;
        // Normal mode, 10% loss: drop every 10th packet.
        for i in 0..500u64 {
            if i % 10 == 9 {
                seq += 1; // drop
                continue;
            }
            let d = data(seq, now, 2, 1_000_000.0);
            r.on_data(now, &d);
            seq += 1;
            now += 0.005;
        }
        // The synthetic initial interval (Appendix B) keeps the early loss
        // estimate below the raw 10% loss fraction, but it must be clearly
        // non-zero and the calculated rate clearly below the sending rate.
        assert!(r.loss_event_rate() > 0.002);
        assert!(r.calculated_rate() < 1_000_000.0);
        assert!(
            r.next_timer().is_some(),
            "a limited receiver must want to send feedback"
        );
    }

    #[test]
    fn rtt_echo_produces_measurement_and_remodels_history() {
        let mut r = receiver(4);
        let mut now = 0.0;
        // Build up some loss history with the initial RTT.
        let mut seq = 0u64;
        for i in 0..200u64 {
            if i % 20 == 19 {
                seq += 1;
                continue;
            }
            let d = data(seq, now, 1, 500_000.0);
            r.on_data(now, &d);
            seq += 1;
            now += 0.002;
        }
        assert!(!r.has_rtt_measurement());
        let rate_before = r.calculated_rate();
        // The sender echoes a report this receiver "sent" 60 ms ago.
        let mut d = data(seq, now, 1, 500_000.0);
        d.rtt_echo = Some(RttEcho {
            receiver: ReceiverId(4),
            echo_timestamp: now - 0.06,
            echo_delay: 0.01,
        });
        r.on_data(now, &d);
        assert!(r.has_rtt_measurement());
        assert!((r.rtt() - 0.05).abs() < 1e-9);
        // With a much smaller RTT the calculated rate must increase
        // substantially even after the loss-history remodelling.
        assert!(r.calculated_rate() > rate_before);
        assert_eq!(r.stats().rtt_measurements, 1);
    }

    #[test]
    fn echo_for_other_receiver_is_not_a_measurement() {
        let mut r = receiver(5);
        let mut d = data(0, 0.0, 1, 100_000.0);
        d.rtt_echo = Some(RttEcho {
            receiver: ReceiverId(99),
            echo_timestamp: 0.0,
            echo_delay: 0.0,
        });
        r.on_data(0.0, &d);
        assert!(!r.has_rtt_measurement());
    }

    #[test]
    fn suppression_cancels_timer_when_echo_rate_is_lower_or_similar() {
        let mut r = receiver(6);
        let mut now = 0.0;
        let mut seq = 0u64;
        for i in 0..300u64 {
            if i % 10 == 9 {
                seq += 1;
                continue;
            }
            let d = data(seq, now, 3, 2_000_000.0);
            r.on_data(now, &d);
            seq += 1;
            now += 0.002;
        }
        assert!(r.next_timer().is_some());
        // Echo of a report with a much lower rate than ours: cancel.
        let mut d = data(seq, now, 3, 2_000_000.0);
        d.suppression = Some(SuppressionEcho {
            receiver: ReceiverId(50),
            rate: 1_000.0,
        });
        r.on_data(now, &d);
        assert!(r.next_timer().is_none());
        assert_eq!(r.stats().feedback_suppressed, 1);
    }

    #[test]
    fn suppression_does_not_cancel_much_lower_rate_receiver() {
        let mut r = receiver(7);
        let mut now = 0.0;
        let mut seq = 0u64;
        for i in 0..400u64 {
            if i % 5 == 4 {
                seq += 1; // 20% loss -> very low calculated rate
                continue;
            }
            let d = data(seq, now, 3, 10_000_000.0);
            r.on_data(now, &d);
            seq += 1;
            now += 0.002;
        }
        let own = r.calculated_rate();
        assert!(r.next_timer().is_some());
        // Echo indicating a rate 10x higher than ours must not suppress us.
        let mut d = data(seq, now, 3, 10_000_000.0);
        d.suppression = Some(SuppressionEcho {
            receiver: ReceiverId(50),
            rate: own * 10.0,
        });
        r.on_data(now, &d);
        assert!(r.next_timer().is_some());
    }

    #[test]
    fn clr_reports_immediately_and_periodically() {
        let mut r = receiver(8);
        let mut now = 0.0;
        let mut reports = 0;
        for seq in 0..200u64 {
            let mut d = data(seq, now, 1, 100_000.0);
            d.clr = Some(ReceiverId(8));
            if r.on_data(now, &d).is_some() {
                reports += 1;
            }
            now += 0.01;
        }
        assert!(r.is_clr());
        // 2 seconds of data, RTT estimate 0.5 s -> roughly 4-5 reports.
        assert!(
            (3..=6).contains(&reports),
            "CLR should report about once per RTT, got {reports}"
        );
        // The CLR never uses a suppression timer.
        assert!(r.next_timer().is_none());
    }

    #[test]
    fn new_round_resets_feedback_state() {
        let mut r = receiver(9);
        let mut now = 0.0;
        let mut seq = 0u64;
        let push = |r: &mut TfmccReceiver, round: u64, now: &mut f64, seq: &mut u64| {
            for i in 0..100u64 {
                if i % 10 == 9 {
                    *seq += 1;
                    continue;
                }
                let d = data(*seq, *now, round, 5_000_000.0);
                r.on_data(*now, &d);
                *seq += 1;
                *now += 0.002;
            }
        };
        push(&mut r, 1, &mut now, &mut seq);
        let t1 = r.next_timer().expect("timer in round 1");
        // Fire it -> feedback sent for round 1.
        let fb = r.on_timer(t1).unwrap();
        assert_eq!(fb.feedback_round, 1);
        // Same round again: no second report.
        push(&mut r, 1, &mut now, &mut seq);
        if let Some(t) = r.next_timer() {
            assert!(r.on_timer(t).is_none());
        }
        // New round: a new timer is scheduled and can fire.
        push(&mut r, 2, &mut now, &mut seq);
        let t2 = r.next_timer().expect("timer in round 2");
        assert!(t2 > t1);
        assert!(r.on_timer(t2).is_some());
    }

    #[test]
    fn stale_timer_from_previous_round_does_not_fire() {
        let mut r = receiver(10);
        let mut now = 0.0;
        let mut seq = 0u64;
        for i in 0..100u64 {
            if i % 10 == 9 {
                seq += 1;
                continue;
            }
            let d = data(seq, now, 1, 5_000_000.0);
            r.on_data(now, &d);
            seq += 1;
            now += 0.002;
        }
        let t1 = r.next_timer().unwrap();
        // A new round starts before the timer fires.
        let d = data(seq, now, 2, 5_000_000.0);
        r.on_data(now, &d);
        // The old deadline is gone; if firing at the old time produces
        // feedback it must belong to the new round (a fresh timer), never to
        // the stale one.
        if let Some(fb) = r.on_timer(t1) {
            assert_eq!(fb.feedback_round, 2)
        }
    }

    #[test]
    fn leave_report_is_marked() {
        let mut r = receiver(11);
        let d = data(0, 0.0, 1, 100_000.0);
        r.on_data(0.0, &d);
        let fb = r.leave(1.0);
        assert!(fb.leaving);
        assert_eq!(fb.receiver, ReceiverId(11));
    }

    #[test]
    fn feedback_echoes_latest_data_timestamp() {
        let mut r = receiver(12);
        let mut d = data(0, 5.0, 1, 100_000.0);
        d.timestamp = 123.456; // sender clock
        d.slowstart = true;
        r.on_data(5.0, &d);
        let t = r.next_timer().unwrap();
        let fb = r.on_timer(t).unwrap();
        assert_eq!(fb.echo_timestamp, 123.456);
        assert!((fb.echo_delay - (t - 5.0)).abs() < 1e-9);
    }
}
