//! Multi-session orchestration: N independent TFMCC sessions in one
//! simulation.
//!
//! The paper's evaluation repeatedly runs *several* TFMCC flows against each
//! other (flow doubling, inter-protocol fairness); [`SessionManager`] is the
//! subsystem that wires such workloads.  It owns a set of sessions — each
//! with its own sender, multicast group, receiver population, churn
//! schedule, start time, and statistics — sharing one
//! [`Simulator`]:
//!
//! ```text
//!                         ┌────────────────────────────┐
//!                         │       SessionManager       │
//!                         │  group/port/flow allocator │
//!                         └──┬───────────┬──────────┬──┘
//!               session 0    │ session 1 │          │ session K-1
//!            ┌───────────────▼──┐  ┌─────▼────────┐ ▼ ...
//!            │ TfmccSenderAgent │  │ SenderAgent  │
//!            │  group 1, flow   │  │ group 2, ... │
//!            │  100, ports      │  └─────┬────────┘
//!            │  5000/5001       │        │
//!            └──┬────────┬──────┘     receivers
//!          receiver  receiver
//!           agents    agents           (one shared Simulator,
//!          (group 1) (group 1)          one shared topology)
//! ```
//!
//! Group ids, data/report ports and flow ids are auto-allocated so sessions
//! can never collide; explicit assignments are validated against every
//! previously added session (overlaps panic with a clear message, like the
//! netsim link-parameter validation).  The single-session
//! [`TfmccSessionBuilder`](crate::session::TfmccSessionBuilder) is a thin
//! wrapper over this type, so the two construction paths cannot drift.
//!
//! After the simulation ran, [`SessionManager::report`] condenses every
//! session into a [`SessionReport`]: per-session throughput (mean over the
//! receiver population plus a probe-receiver trace), CLR state and sender
//! statistics, and the cross-session Jain fairness index the inter-TFMCC
//! experiments plot.

use netsim::packet::{AgentId, FlowId, GroupId, NodeId, Port};
use netsim::sim::Simulator;

use tfmcc_proto::config::TfmccConfig;
use tfmcc_proto::packets::ReceiverId;
use tfmcc_proto::sender::SenderStats;

use crate::population::{FluidPopulationAgent, PopulationSpec, FLUID_ID_BASE, FLUID_ID_POP_SHIFT};
use crate::receiver_agent::TfmccReceiverAgent;
use crate::sender_agent::TfmccSenderAgent;
use crate::session::ReceiverSpec;

/// Index of a session within its [`SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub usize);

/// Parameters of one session to be added to a [`SessionManager`].
///
/// Group, ports and flow are auto-allocated when left `None` (the default):
/// session *i* gets group `1 + i`, data/report ports `5000 + 2i` /
/// `5001 + 2i` and flow `100 + i` — which makes the first auto-allocated
/// session identical to the historical single-session defaults — skipping
/// forward over any value an earlier explicitly addressed session already
/// holds, so defaulted sessions never collide.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Protocol configuration shared by the session's sender and receivers.
    pub config: TfmccConfig,
    /// Time at which the sender starts transmitting.
    pub start_at: f64,
    /// Record the sending-rate series into the statistics registry.
    pub record_rate_series: bool,
    /// Bin width (seconds) of each receiver's local throughput meter.
    pub meter_bin: f64,
    /// Multicast group (auto-allocated when `None`).
    pub group: Option<GroupId>,
    /// Port data packets are addressed to (auto-allocated when `None`).
    pub data_port: Option<Port>,
    /// Port the sender listens on for reports (auto-allocated when `None`).
    pub sender_port: Option<Port>,
    /// Flow id tagging the session's data packets (auto-allocated when
    /// `None`).
    pub flow: Option<FlowId>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            config: TfmccConfig::default(),
            start_at: 0.0,
            record_rate_series: false,
            meter_bin: 1.0,
            group: None,
            data_port: None,
            sender_port: None,
            flow: None,
        }
    }
}

impl SessionSpec {
    /// Delays the sender's start to `t` seconds of simulation time.
    pub fn starting_at(mut self, t: f64) -> Self {
        self.start_at = t;
        self
    }

    /// Records the sending-rate series into the statistics registry.
    pub fn with_rate_series(mut self) -> Self {
        self.record_rate_series = true;
        self
    }

    /// Uses `bin`-second bins for the receivers' throughput meters.
    pub fn with_meter_bin(mut self, bin: f64) -> Self {
        self.meter_bin = bin;
        self
    }

    /// Pins the session to an explicit group/port/flow assignment (validated
    /// against other sessions when the session is added).
    pub fn with_addressing(
        mut self,
        group: GroupId,
        data_port: Port,
        sender_port: Port,
        flow: FlowId,
    ) -> Self {
        self.group = Some(group);
        self.data_port = Some(data_port);
        self.sender_port = Some(sender_port);
        self.flow = Some(flow);
        self
    }
}

/// Handles to one built session.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The session's index within the manager.
    pub id: SessionId,
    /// The sender agent.
    pub sender: AgentId,
    /// The node the sender runs on.
    pub sender_node: NodeId,
    /// The packet-level receiver agents, in the order of the specs passed
    /// when adding.
    pub receivers: Vec<AgentId>,
    /// The fluid population agents, in the order of the fluid specs passed
    /// when adding (empty for a pure packet-level session).
    pub fluid: Vec<AgentId>,
    /// The session's multicast group.
    pub group: GroupId,
    /// The port data packets are addressed to.
    pub data_port: Port,
    /// The port the sender listens on for reports.
    pub sender_port: Port,
    /// The flow id tagging the session's data packets.
    pub flow: FlowId,
    /// The sender's start time.
    pub start_at: f64,
}

/// Condensed post-run state of one session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The session's index within the manager.
    pub id: SessionId,
    /// The session's multicast group.
    pub group: GroupId,
    /// The flow id tagging the session's data packets.
    pub flow: FlowId,
    /// Number of packet-level receivers in the session.
    pub receivers: usize,
    /// Total receivers the session stands for at the end of the run: every
    /// packet-level receiver the sender knows plus the weights of all fluid
    /// population bins that reported.
    pub population: u64,
    /// Mean receiver throughput over the report window, bytes/second.
    pub mean_throughput: f64,
    /// Throughput trace (time, bytes/second) of the probe receiver (the
    /// session's first receiver).
    pub probe_trace: Vec<(f64, f64)>,
    /// The current limiting receiver at the end of the run.
    pub clr: Option<ReceiverId>,
    /// The sender's accumulated statistics (data packets, CLR changes,
    /// rounds, ...).
    pub sender_stats: SenderStats,
}

/// Per-session summaries plus cross-session fairness metrics.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// One summary per session, in session order.
    pub sessions: Vec<SessionSummary>,
    /// Start of the report window (seconds).
    pub from: f64,
    /// End of the report window (seconds).
    pub to: f64,
}

impl SessionReport {
    /// Jain's fairness index over the sessions' mean throughputs:
    /// `(Σx)² / (n · Σx²)`, 1.0 for perfectly equal rates, `1/n` when one
    /// session takes everything.  Returns 1.0 for an empty or all-idle
    /// report.
    pub fn jain_index(&self) -> f64 {
        jain_index(self.sessions.iter().map(|s| s.mean_throughput))
    }

    /// Smallest per-session mean throughput, bytes/second.
    pub fn min_throughput(&self) -> f64 {
        self.sessions
            .iter()
            .map(|s| s.mean_throughput)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest per-session mean throughput, bytes/second.
    pub fn max_throughput(&self) -> f64 {
        self.sessions
            .iter()
            .map(|s| s.mean_throughput)
            .fold(0.0, f64::max)
    }

    /// Sum of the per-session mean throughputs, bytes/second.
    pub fn total_throughput(&self) -> f64 {
        self.sessions.iter().map(|s| s.mean_throughput).sum()
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over a set of allocations.
pub fn jain_index<I: IntoIterator<Item = f64>>(rates: I) -> f64 {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for x in rates {
        assert!(x >= 0.0 && x.is_finite(), "rates must be finite and ≥ 0");
        sum += x;
        sum_sq += x * x;
        n += 1;
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

/// A group/port/flow assignment handed out by
/// [`SessionManager::reserve_addressing`]: an address block a non-TFMCC
/// (competitor) flow can use on the same simulator without colliding with
/// any TFMCC session the manager owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAddressing {
    /// Multicast group reserved for the flow (unicast flows may ignore it).
    pub group: GroupId,
    /// Port for the flow's data packets.
    pub data_port: Port,
    /// Port for the flow's feedback/report packets.
    pub sender_port: Port,
    /// Flow id tagging the flow's packets.
    pub flow: FlowId,
}

/// Owns N independent TFMCC sessions sharing one simulator.
#[derive(Debug, Clone, Default)]
pub struct SessionManager {
    sessions: Vec<SessionHandle>,
    reserved: Vec<SessionAddressing>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions added so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session has been added.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The built sessions, in the order they were added.
    pub fn sessions(&self) -> &[SessionHandle] {
        &self.sessions
    }

    /// A session's handles.
    pub fn session(&self, id: SessionId) -> &SessionHandle {
        &self.sessions[id.0]
    }

    /// True if `g` is held by a session or a reservation.
    fn group_taken(&self, g: u32) -> bool {
        self.sessions.iter().any(|s| s.group.0 == g) || self.reserved.iter().any(|r| r.group.0 == g)
    }

    /// True if `p` is held by a session or a reservation (either role).
    fn port_taken(&self, p: u16) -> bool {
        self.sessions
            .iter()
            .any(|s| s.data_port.0 == p || s.sender_port.0 == p)
            || self
                .reserved
                .iter()
                .any(|r| r.data_port.0 == p || r.sender_port.0 == p)
    }

    /// True if `f` is held by a session or a reservation.
    fn flow_taken(&self, f: u64) -> bool {
        self.sessions.iter().any(|s| s.flow.0 == f) || self.reserved.iter().any(|r| r.flow.0 == f)
    }

    /// Reserves a group/port-pair/flow block for a *non-TFMCC* flow sharing
    /// the simulator — the heterogeneous-protocol wiring the cross-protocol
    /// fairness experiments use for PGMCC/TFRC/TCP competitors.  The block
    /// follows the same allocation sequence as auto-addressed sessions, is
    /// never handed out twice, and later TFMCC sessions (auto- or
    /// explicitly addressed) are kept clear of it.
    pub fn reserve_addressing(&mut self) -> SessionAddressing {
        let index = self.sessions.len() + self.reserved.len();
        let mut g = 1 + index as u32;
        while self.group_taken(g) {
            g += 1;
        }
        let mut base = 5000u16.checked_add(2 * index as u16).expect("port space");
        while self.port_taken(base) || self.port_taken(base + 1) {
            base = base.checked_add(2).expect("port space");
        }
        let mut f = 100 + index as u64;
        while self.flow_taken(f) {
            f += 1;
        }
        let addressing = SessionAddressing {
            group: GroupId(g),
            data_port: Port(base),
            sender_port: Port(base + 1),
            flow: FlowId(f),
        };
        self.reserved.push(addressing);
        addressing
    }

    /// Adds one session specified as a plain packet-level receiver list.
    ///
    /// Thin shim over [`Self::add_population_session`], the unified entry
    /// point that also accepts fluid populations;
    /// [`PopulationSpec::packets`] wraps a `ReceiverSpec` slice.
    #[deprecated(
        since = "0.1.0",
        note = "use add_population_session (PopulationSpec::packets wraps a ReceiverSpec slice)"
    )]
    pub fn add_session(
        &mut self,
        sim: &mut Simulator,
        spec: &SessionSpec,
        sender_node: NodeId,
        receivers: &[ReceiverSpec],
    ) -> SessionId {
        self.add_population_session(sim, spec, sender_node, &PopulationSpec::packets(receivers))
    }

    /// Adds one session: attaches its sender to `sender_node`, one receiver
    /// agent per [`PopulationSpec::Packet`] entry and one fluid population
    /// agent per [`PopulationSpec::Fluid`] entry, all wired to the session's
    /// group and ports.
    ///
    /// Packet-level receivers take `ReceiverId`s 1, 2, … in the order of
    /// their entries — identical to a pure packet-level session over the
    /// same cohort, which is what the hybrid equivalence tests pin.  Fluid
    /// populations report under synthetic ids starting at
    /// [`FLUID_ID_BASE`].
    ///
    /// **CLR-cohort promotion rule:** the packet-level cohort must be able
    /// to produce the CLR, so at least one packet-level receiver is
    /// required, and the cohort should cover the lower tail of the rate
    /// distribution (the lossiest / slowest receivers).  A fluid bin *can*
    /// temporarily hold the CLR — its reports are complete feedback packets
    /// — but a session whose steady-state CLR is a fluid bin is governed by
    /// an analytic aggregate rather than a simulated receiver; treat that
    /// as a sign the cohort needs re-provisioning.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the spec is invalid: an empty
    /// population, a hybrid session without a packet-level receiver, an
    /// invalid fluid profile (zero count, bins outside 1..=64, loss outside
    /// `[0, 1)`, non-positive RTT), non-finite or negative times,
    /// non-positive churn periods, or a group/port/flow assignment
    /// overlapping a previously added session (see [`SessionSpec`] for the
    /// auto-allocation that makes overlaps impossible by default).
    pub fn add_population_session(
        &mut self,
        sim: &mut Simulator,
        spec: &SessionSpec,
        sender_node: NodeId,
        populations: &[PopulationSpec],
    ) -> SessionId {
        let id = SessionId(self.sessions.len());
        let index = id.0;
        // Auto-allocation starts from the historical single-session defaults
        // and skips anything an earlier (possibly explicitly addressed)
        // session already holds, so defaulted sessions can never collide.
        let group = spec.group.unwrap_or_else(|| {
            let mut g = 1 + index as u32;
            while self.group_taken(g) {
                g += 1;
            }
            GroupId(g)
        });
        let free_port_pair = || {
            let mut base = 5000u16.checked_add(2 * index as u16).expect("port space");
            while self.port_taken(base) || self.port_taken(base + 1) {
                base = base.checked_add(2).expect("port space");
            }
            (base, base + 1)
        };
        let (data_port, sender_port) = match (spec.data_port, spec.sender_port) {
            (Some(d), Some(s)) => (d, s),
            (Some(d), None) => (d, Port(d.0.checked_add(1).expect("port space"))),
            (None, Some(s)) => (Port(s.0.checked_sub(1).expect("port space")), s),
            (None, None) => {
                let (d, s) = free_port_pair();
                (Port(d), Port(s))
            }
        };
        let flow = spec.flow.unwrap_or_else(|| {
            let mut f = 100 + index as u64;
            while self.flow_taken(f) {
                f += 1;
            }
            FlowId(f)
        });
        self.validate(
            spec,
            group,
            data_port,
            sender_port,
            flow,
            sender_node,
            populations,
        );

        let sender_addr = netsim::packet::Address::new(sender_node, sender_port);
        let mut sender_agent = TfmccSenderAgent::new(
            tfmcc_proto::sender::TfmccSender::new(spec.config.clone()),
            group,
            data_port,
            flow,
        )
        .starting_at(spec.start_at);
        if spec.record_rate_series {
            sender_agent = sender_agent.with_rate_series();
        }
        let sender = sim.add_agent(sender_node, sender_port, Box::new(sender_agent));

        let mut receiver_ids = Vec::new();
        let mut fluid_ids = Vec::new();
        for pspec in populations {
            match pspec {
                PopulationSpec::Packet(rspec) => {
                    let mut agent = TfmccReceiverAgent::new(
                        ReceiverId(receiver_ids.len() as u64 + 1),
                        spec.config.clone(),
                        sender_addr,
                        group,
                        flow,
                    )
                    .with_meter_bin(spec.meter_bin)
                    .joining_at(rspec.join_at);
                    if let Some(t) = rspec.leave_at {
                        agent = agent.leaving_at(t);
                    }
                    if let Some((on_secs, off_secs)) = rspec.churn {
                        agent = agent.churning(on_secs, off_secs);
                    }
                    let agent_id = sim.add_agent(rspec.node, data_port, Box::new(agent));
                    receiver_ids.push(agent_id);
                }
                PopulationSpec::Fluid(fspec) => {
                    let id_base = FLUID_ID_BASE + ((fluid_ids.len() as u64) << FLUID_ID_POP_SHIFT);
                    let agent = FluidPopulationAgent::new(
                        fspec,
                        spec.config.clone(),
                        id_base,
                        sender_addr,
                        group,
                        flow,
                    );
                    let agent_id = sim.add_agent(fspec.node, data_port, Box::new(agent));
                    fluid_ids.push(agent_id);
                }
            }
        }
        self.sessions.push(SessionHandle {
            id,
            sender,
            sender_node,
            receivers: receiver_ids,
            fluid: fluid_ids,
            group,
            data_port,
            sender_port,
            flow,
            start_at: spec.start_at,
        });
        id
    }

    /// Input validation shared by every construction path (the session-layer
    /// counterpart of netsim's link-parameter validation).
    #[allow(clippy::too_many_arguments)]
    fn validate(
        &self,
        spec: &SessionSpec,
        group: GroupId,
        data_port: Port,
        sender_port: Port,
        flow: FlowId,
        sender_node: NodeId,
        populations: &[PopulationSpec],
    ) {
        assert!(
            !populations.is_empty(),
            "a TFMCC session needs at least one receiver"
        );
        assert!(
            populations
                .iter()
                .any(|p| matches!(p, PopulationSpec::Packet(_))),
            "a hybrid session needs at least one packet-level receiver (the CLR cohort)"
        );
        assert!(
            spec.start_at.is_finite() && spec.start_at >= 0.0,
            "session start_at must be finite and ≥ 0, got {}",
            spec.start_at
        );
        assert!(
            spec.meter_bin.is_finite() && spec.meter_bin > 0.0,
            "session meter_bin must be a positive number of seconds, got {}",
            spec.meter_bin
        );
        assert!(
            data_port != sender_port,
            "data port and sender report port must differ, got {} for both",
            data_port.0
        );
        for (i, p) in populations.iter().enumerate() {
            match p {
                PopulationSpec::Packet(r) => {
                    assert!(
                        r.join_at.is_finite() && r.join_at >= 0.0,
                        "receiver {i}: join_at must be finite and ≥ 0, got {}",
                        r.join_at
                    );
                    if let Some(leave_at) = r.leave_at {
                        assert!(
                            leave_at.is_finite() && leave_at > r.join_at,
                            "receiver {i}: leave_at ({leave_at}) must be finite and after join_at ({})",
                            r.join_at
                        );
                        assert!(
                            r.churn.is_none(),
                            "receiver {i}: leave_at and churn are exclusive"
                        );
                    }
                    if let Some((on_secs, off_secs)) = r.churn {
                        assert!(
                            on_secs.is_finite()
                                && on_secs > 0.0
                                && off_secs.is_finite()
                                && off_secs > 0.0,
                            "receiver {i}: churn periods must be positive and finite, got on={on_secs} off={off_secs}"
                        );
                    }
                }
                // Panics with the PopulationProfile messages (count > 0,
                // bins in 1..=64, loss within [0, 1), positive finite RTT).
                PopulationSpec::Fluid(f) => f.profile().validate(),
            }
        }
        for other in &self.sessions {
            assert!(
                other.group != group,
                "session {} already uses multicast group {}; give each session its own group \
                 (or let the manager auto-allocate)",
                other.id.0,
                group.0
            );
            assert!(
                other.flow != flow,
                "session {} already uses flow id {}; per-session statistics need distinct flows",
                other.id.0,
                flow.0
            );
            assert!(
                other.data_port != data_port && other.data_port != sender_port,
                "session {} already binds receivers to port {}; overlapping ports would \
                 cross-deliver data packets",
                other.id.0,
                other.data_port.0
            );
            assert!(
                !(other.sender_node == sender_node
                    && (other.sender_port == sender_port || other.sender_port == data_port)),
                "session {} already binds its sender to port {} on node {}; reports would \
                 cross-deliver",
                other.id.0,
                other.sender_port.0,
                sender_node.0
            );
        }
        for r in &self.reserved {
            assert!(
                r.group != group,
                "multicast group {} is reserved for a competitor flow",
                group.0
            );
            assert!(
                r.flow != flow,
                "flow id {} is reserved for a competitor flow",
                flow.0
            );
            assert!(
                r.data_port != data_port
                    && r.data_port != sender_port
                    && r.sender_port != data_port
                    && r.sender_port != sender_port,
                "ports {}/{} overlap an addressing block reserved for a competitor flow",
                data_port.0,
                sender_port.0
            );
        }
    }

    /// Borrow a session's sender agent.
    pub fn sender_agent<'a>(&self, sim: &'a Simulator, id: SessionId) -> &'a TfmccSenderAgent {
        sim.agent(self.session(id).sender)
            .expect("sender agent exists")
    }

    /// Borrow a session's fluid population agent by index (the order of the
    /// fluid entries passed when adding).
    pub fn fluid_agent<'a>(
        &self,
        sim: &'a Simulator,
        id: SessionId,
        index: usize,
    ) -> &'a FluidPopulationAgent {
        sim.agent(self.session(id).fluid[index])
            .expect("fluid population agent exists")
    }

    /// Borrow a session's receiver agent by index.
    pub fn receiver_agent<'a>(
        &self,
        sim: &'a Simulator,
        id: SessionId,
        index: usize,
    ) -> &'a TfmccReceiverAgent {
        sim.agent(self.session(id).receivers[index])
            .expect("receiver agent exists")
    }

    /// Average throughput seen by a session's receiver over `[from, to]`,
    /// in bytes per second.
    pub fn receiver_throughput(
        &self,
        sim: &Simulator,
        id: SessionId,
        index: usize,
        from: f64,
        to: f64,
    ) -> f64 {
        self.receiver_agent(sim, id, index)
            .meter()
            .average_between(from, to)
    }

    /// Mean receiver throughput of one session over `[from, to]`, in bytes
    /// per second.
    pub fn session_throughput(&self, sim: &Simulator, id: SessionId, from: f64, to: f64) -> f64 {
        let handle = self.session(id);
        let sum: f64 = handle
            .receivers
            .iter()
            .map(|&r| {
                sim.agent::<TfmccReceiverAgent>(r)
                    .expect("receiver agent exists")
                    .meter()
                    .average_between(from, to)
            })
            .sum();
        sum / handle.receivers.len() as f64
    }

    /// Condenses every session's post-run state over the window `[from, to]`.
    pub fn report(&self, sim: &Simulator, from: f64, to: f64) -> SessionReport {
        let sessions = self
            .sessions
            .iter()
            .map(|handle| {
                let sender = self.sender_agent(sim, handle.id).protocol();
                SessionSummary {
                    id: handle.id,
                    group: handle.group,
                    flow: handle.flow,
                    receivers: handle.receivers.len(),
                    population: sender.session_population(),
                    mean_throughput: self.session_throughput(sim, handle.id, from, to),
                    probe_trace: self.receiver_agent(sim, handle.id, 0).meter().series(),
                    clr: sender.clr(),
                    sender_stats: sender.stats(),
                }
            })
            .collect();
        SessionReport { sessions, from, to }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    fn star_with_legs(sim: &mut Simulator, n: usize) -> Star {
        let legs: Vec<StarLeg> = (0..n).map(|_| StarLeg::clean(1_250_000.0, 0.02)).collect();
        star(sim, &StarConfig::default(), &legs)
    }

    #[test]
    fn auto_allocation_matches_single_session_defaults_then_advances() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 4);
        let mut mgr = SessionManager::new();
        let a = mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.sender,
            &[
                PopulationSpec::packet(st.receivers[0]),
                PopulationSpec::packet(st.receivers[1]),
            ],
        );
        let b = mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.receivers[2],
            &[PopulationSpec::packet(st.receivers[3])],
        );
        assert_eq!(mgr.len(), 2);
        let a = mgr.session(a);
        assert_eq!(
            (a.group, a.data_port, a.sender_port, a.flow),
            (GroupId(1), Port(5000), Port(5001), FlowId(100))
        );
        let b = mgr.session(b);
        assert_eq!(
            (b.group, b.data_port, b.sender_port, b.flow),
            (GroupId(2), Port(5002), Port(5003), FlowId(101))
        );
    }

    #[test]
    fn auto_allocation_skips_values_held_by_explicit_sessions() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 4);
        let mut mgr = SessionManager::new();
        // An explicit session squats on the values a second defaulted
        // session would otherwise auto-allocate (group 2, ports 5002/5003,
        // flow 101).
        let explicit =
            SessionSpec::default().with_addressing(GroupId(2), Port(5002), Port(5003), FlowId(101));
        mgr.add_population_session(
            &mut sim,
            &explicit,
            st.sender,
            &[PopulationSpec::packet(st.receivers[0])],
        );
        let first = mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.receivers[1],
            &[PopulationSpec::packet(st.receivers[2])],
        );
        let second = mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.receivers[2],
            &[PopulationSpec::packet(st.receivers[3])],
        );
        let first = mgr.session(first);
        assert_eq!(
            (first.group, first.data_port, first.sender_port, first.flow),
            (GroupId(3), Port(5004), Port(5005), FlowId(102))
        );
        let second = mgr.session(second);
        assert_eq!(
            (
                second.group,
                second.data_port,
                second.sender_port,
                second.flow
            ),
            (GroupId(4), Port(5006), Port(5007), FlowId(103))
        );
    }

    #[test]
    #[should_panic(expected = "needs at least one receiver")]
    fn zero_receivers_are_rejected() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 1);
        SessionManager::new().add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.sender,
            &[],
        );
    }

    #[test]
    #[should_panic(expected = "churn periods must be positive")]
    fn non_positive_churn_is_rejected() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 1);
        let mut spec = ReceiverSpec::always(st.receivers[0]);
        spec.churn = Some((10.0, 0.0));
        SessionManager::new().add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.sender,
            &[PopulationSpec::Packet(spec)],
        );
    }

    #[test]
    #[should_panic(expected = "leave_at and churn are exclusive")]
    fn leave_and_churn_are_exclusive() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 1);
        let mut spec = ReceiverSpec::always(st.receivers[0]).leaving_at(5.0);
        spec.churn = Some((1.0, 1.0));
        SessionManager::new().add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.sender,
            &[PopulationSpec::Packet(spec)],
        );
    }

    #[test]
    #[should_panic(expected = "already uses multicast group")]
    fn overlapping_groups_are_rejected() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 2);
        let mut mgr = SessionManager::new();
        let spec =
            SessionSpec::default().with_addressing(GroupId(9), Port(6000), Port(6001), FlowId(500));
        mgr.add_population_session(
            &mut sim,
            &spec,
            st.sender,
            &[PopulationSpec::packet(st.receivers[0])],
        );
        let clash =
            SessionSpec::default().with_addressing(GroupId(9), Port(7000), Port(7001), FlowId(501));
        mgr.add_population_session(
            &mut sim,
            &clash,
            st.receivers[1],
            &[PopulationSpec::packet(st.receivers[0])],
        );
    }

    #[test]
    #[should_panic(expected = "overlapping ports")]
    fn overlapping_data_ports_are_rejected() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 2);
        let mut mgr = SessionManager::new();
        let spec =
            SessionSpec::default().with_addressing(GroupId(9), Port(6000), Port(6001), FlowId(500));
        mgr.add_population_session(
            &mut sim,
            &spec,
            st.sender,
            &[PopulationSpec::packet(st.receivers[0])],
        );
        let clash = SessionSpec::default().with_addressing(
            GroupId(10),
            Port(6000),
            Port(7001),
            FlowId(501),
        );
        mgr.add_population_session(
            &mut sim,
            &clash,
            st.receivers[1],
            &[PopulationSpec::packet(st.receivers[0])],
        );
    }

    #[test]
    fn reserved_addressing_is_skipped_by_auto_allocation() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 2);
        let mut mgr = SessionManager::new();
        // A competitor flow reserves what would have been the first
        // session's defaults…
        let reserved = mgr.reserve_addressing();
        assert_eq!(
            reserved,
            SessionAddressing {
                group: GroupId(1),
                data_port: Port(5000),
                sender_port: Port(5001),
                flow: FlowId(100),
            }
        );
        // …so the first auto-addressed TFMCC session moves past it.
        let id = mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            st.sender,
            &[PopulationSpec::packet(st.receivers[0])],
        );
        let s = mgr.session(id);
        assert_eq!(
            (s.group, s.data_port, s.sender_port, s.flow),
            (GroupId(2), Port(5002), Port(5003), FlowId(101))
        );
        // A second reservation advances past both.
        let second = mgr.reserve_addressing();
        assert_eq!(
            second,
            SessionAddressing {
                group: GroupId(3),
                data_port: Port(5004),
                sender_port: Port(5005),
                flow: FlowId(102),
            }
        );
    }

    #[test]
    #[should_panic(expected = "reserved for a competitor flow")]
    fn explicit_addressing_cannot_squat_on_a_reservation() {
        let mut sim = Simulator::new(7);
        let st = star_with_legs(&mut sim, 1);
        let mut mgr = SessionManager::new();
        let reserved = mgr.reserve_addressing();
        let clash = SessionSpec::default().with_addressing(
            reserved.group,
            Port(9000),
            Port(9001),
            FlowId(900),
        );
        mgr.add_population_session(
            &mut sim,
            &clash,
            st.sender,
            &[PopulationSpec::packet(st.receivers[0])],
        );
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_index([100.0, 100.0, 100.0, 100.0]), 1.0);
        let skewed = jain_index([100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "got {skewed}");
        assert_eq!(jain_index(std::iter::empty()), 1.0);
        assert_eq!(jain_index([0.0, 0.0]), 1.0);
    }

    /// Two concurrent sessions over one shared bottleneck split it roughly
    /// fairly, and the report exposes per-session state.
    #[test]
    fn two_sessions_share_a_bottleneck() {
        let mut sim = Simulator::new(42);
        // Shared bottleneck: s0/s1 -> hub -> r0/r1.
        let s0 = sim.add_node("s0");
        let s1 = sim.add_node("s1");
        let hub = sim.add_node("hub");
        let sink = sim.add_node("sink");
        let r0 = sim.add_node("r0");
        let r1 = sim.add_node("r1");
        sim.add_duplex_link(s0, hub, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));
        sim.add_duplex_link(s1, hub, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));
        // 2 Mbit/s shared bottleneck.
        sim.add_duplex_link(hub, sink, 250_000.0, 0.02, QueueDiscipline::drop_tail(40));
        sim.add_duplex_link(sink, r0, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));
        sim.add_duplex_link(sink, r1, 1_250_000.0, 0.005, QueueDiscipline::drop_tail(60));

        let mut mgr = SessionManager::new();
        mgr.add_population_session(
            &mut sim,
            &SessionSpec::default(),
            s0,
            &[PopulationSpec::packet(r0)],
        );
        mgr.add_population_session(
            &mut sim,
            &SessionSpec::default().starting_at(10.0),
            s1,
            &[PopulationSpec::packet(r1)],
        );
        sim.run_until(SimTime::from_secs(220.0));

        let report = mgr.report(&sim, 100.0, 215.0);
        assert_eq!(report.sessions.len(), 2);
        for s in &report.sessions {
            assert!(
                s.mean_throughput > 20_000.0,
                "session {} starved: {} B/s",
                s.id.0,
                s.mean_throughput
            );
            assert!(s.sender_stats.data_packets > 0);
            assert!(!s.probe_trace.is_empty());
        }
        let jain = report.jain_index();
        assert!(
            jain > 0.70,
            "two identical TFMCC sessions should share fairly: Jain {jain}, rates {} vs {}",
            report.sessions[0].mean_throughput,
            report.sessions[1].mean_throughput
        );
        assert!(
            report.total_throughput() <= 300_000.0,
            "cannot exceed the bottleneck"
        );
        assert!(report.min_throughput() <= report.max_throughput());
    }
}
