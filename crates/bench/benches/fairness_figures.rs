//! Benchmarks regenerating the fairness figures (paper Figures 9, 10, 18,
//! 19) at reduced scale, plus the raw simulator packet-forwarding rate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netsim::prelude::*;
use tfmcc_experiments::{fairness_figs, Scale, SweepRunner};

fn bench_fairness_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness_figures");
    group.sample_size(10);
    group.bench_function("fig09_single_bottleneck_quick", |b| {
        b.iter(|| {
            black_box(fairness_figs::fig09_single_bottleneck(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig10_tail_circuits_quick", |b| {
        b.iter(|| {
            black_box(fairness_figs::fig10_tail_circuits(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.bench_function("fig19_lossy_return_paths_quick", |b| {
        b.iter(|| {
            black_box(fairness_figs::fig19_lossy_return_paths(
                &SweepRunner::serial(),
                Scale::Quick,
            ))
        })
    });
    group.finish();
}

fn bench_simulator_forwarding(c: &mut Criterion) {
    c.bench_function("netsim_cbr_10s_simulated", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let a = sim.add_node("a");
            let bnode = sim.add_node("b");
            sim.add_duplex_link(a, bnode, 1_250_000.0, 0.01, QueueDiscipline::drop_tail(100));
            let sink = sim.add_agent(bnode, Port(1), Box::new(Sink::new(1.0)));
            let dst = Dest::Unicast(Address::new(bnode, Port(1)));
            sim.add_agent(
                a,
                Port(1),
                Box::new(CbrSource::new(dst, FlowId(1), 1000, 1_000_000.0, 0.0)),
            );
            sim.run_until(SimTime::from_secs(10.0));
            black_box(sim.agent::<Sink>(sink).unwrap().packets())
        })
    });
}

criterion_group!(benches, bench_fairness_figures, bench_simulator_forwarding);
criterion_main!(benches);
