//! The TFMCC receiver bound to the simulator.

use std::any::Any;

use netsim::packet::{Address, Dest, FlowId, GroupId, Packet, Payload};
use netsim::sim::{Agent, Context, TimerId};
use netsim::stats::ThroughputMeter;

use tfmcc_proto::packets::{DataPacket, FeedbackPacket};
use tfmcc_proto::receiver::TfmccReceiver;

/// Timer token for the (single) protocol feedback timer; the generation is
/// added so stale timers are recognised.
const FEEDBACK_TOKEN_BASE: u64 = 1 << 32;
/// Timer token for the deferred group join.
const JOIN_TOKEN: u64 = 1;
/// Timer token for the scheduled leave.
const LEAVE_TOKEN: u64 = 2;

/// Runs a [`TfmccReceiver`] inside the simulator: it joins the multicast
/// group (optionally at a later time), feeds arriving data packets into the
/// protocol receiver, transmits the resulting reports to the sender as
/// unicast packets and keeps the simulator timer in sync with the receiver's
/// single feedback deadline.
pub struct TfmccReceiverAgent {
    receiver: TfmccReceiver,
    sender_addr: Address,
    group: GroupId,
    flow: FlowId,
    join_at: f64,
    leave_at: Option<f64>,
    left: bool,
    meter: ThroughputMeter,
    armed: Option<(TimerId, f64)>,
    generation: u64,
}

impl TfmccReceiverAgent {
    /// Creates the agent.  Reports are unicast to `sender_addr`; received
    /// data is attributed to `flow` in the local throughput meter.
    pub fn new(
        receiver: TfmccReceiver,
        sender_addr: Address,
        group: GroupId,
        flow: FlowId,
    ) -> Self {
        TfmccReceiverAgent {
            receiver,
            sender_addr,
            group,
            flow,
            join_at: 0.0,
            leave_at: None,
            left: false,
            meter: ThroughputMeter::new(1.0),
            armed: None,
            generation: 0,
        }
    }

    /// Joins the multicast group only at `t` seconds of simulation time
    /// (before that the receiver gets no data).
    pub fn joining_at(mut self, t: f64) -> Self {
        self.join_at = t;
        self
    }

    /// Leaves the session at `t` seconds of simulation time, announcing the
    /// departure to the sender.
    pub fn leaving_at(mut self, t: f64) -> Self {
        self.leave_at = Some(t);
        self
    }

    /// Uses `bin`-second bins for the local throughput meter.
    pub fn with_meter_bin(mut self, bin: f64) -> Self {
        self.meter = ThroughputMeter::new(bin);
        self
    }

    /// The wrapped protocol receiver.
    pub fn protocol(&self) -> &TfmccReceiver {
        &self.receiver
    }

    /// Throughput meter over the data this receiver got.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    fn send_feedback(&self, ctx: &mut Context<'_>, fb: FeedbackPacket) {
        let pkt = Packet::new(
            ctx.addr(),
            Dest::Unicast(self.sender_addr),
            FeedbackPacket::WIRE_SIZE,
            self.flow,
            Payload::new(fb),
        );
        ctx.send(pkt);
    }

    /// Re-arms the simulator timer to match the receiver's single feedback
    /// deadline.
    fn sync_timer(&mut self, ctx: &mut Context<'_>) {
        let desired = self.receiver.next_timer();
        match (desired, self.armed) {
            (Some(at), Some((_, armed_at))) if (at - armed_at).abs() < 1e-9 => {}
            (Some(at), maybe_armed) => {
                if let Some((id, _)) = maybe_armed {
                    ctx.cancel(id);
                }
                self.generation += 1;
                let delay = (at - ctx.now().as_secs()).max(0.0);
                let id = ctx.schedule(delay, FEEDBACK_TOKEN_BASE + self.generation);
                self.armed = Some((id, at));
            }
            (None, Some((id, _))) => {
                ctx.cancel(id);
                self.armed = None;
            }
            (None, None) => {}
        }
    }
}

impl Agent for TfmccReceiverAgent {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let join_delay = (self.join_at - ctx.now().as_secs()).max(0.0);
        ctx.schedule(join_delay, JOIN_TOKEN);
        if let Some(leave_at) = self.leave_at {
            let leave_delay = (leave_at - ctx.now().as_secs()).max(0.0);
            ctx.schedule(leave_delay, LEAVE_TOKEN);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == JOIN_TOKEN {
            if !self.left {
                ctx.join_group(self.group);
            }
            return;
        }
        if token == LEAVE_TOKEN {
            self.left = true;
            ctx.leave_group(self.group);
            let fb = self.receiver.leave(ctx.now().as_secs());
            self.send_feedback(ctx, fb);
            if let Some((id, _)) = self.armed.take() {
                ctx.cancel(id);
            }
            return;
        }
        if token != FEEDBACK_TOKEN_BASE + self.generation || self.left {
            return; // stale feedback timer
        }
        self.armed = None;
        if let Some(fb) = self.receiver.on_timer(ctx.now().as_secs()) {
            self.send_feedback(ctx, fb);
            ctx.stats().add("tfmcc.feedback_sent", 1.0);
        }
        self.sync_timer(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if self.left {
            return;
        }
        let Some(data) = packet.payload.downcast_ref::<DataPacket>() else {
            return;
        };
        self.meter.record(ctx.now(), u64::from(packet.size));
        let now = ctx.now().as_secs();
        if let Some(fb) = self.receiver.on_data(now, data) {
            self.send_feedback(ctx, fb);
            ctx.stats().add("tfmcc.feedback_sent", 1.0);
        }
        self.sync_timer(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
