//! Experiment scale selection.

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Reduced receiver counts and durations, for tests and benches
    /// (seconds of wall clock).
    Quick,
    /// The paper's parameters (receiver sets up to 10⁴, simulations of
    /// several hundred simulated seconds) — minutes of wall clock.
    #[default]
    Paper,
}

impl Scale {
    /// Reads the `TFMCC_SCALE` environment override (`quick` or `paper`,
    /// case-insensitive).  Returns `None` when unset; unknown values warn on
    /// stderr and are ignored so a typo cannot silently change an
    /// experiment's scale to the default.
    pub fn from_env() -> Option<Self> {
        let value = std::env::var("TFMCC_SCALE").ok()?;
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            other => {
                eprintln!("warning: ignoring unknown TFMCC_SCALE value '{other}' (use 'quick' or 'paper')");
                None
            }
        }
    }

    /// Resolves the scale from explicit CLI flags, with the `TFMCC_SCALE`
    /// environment variable taking precedence so tests and CI can pin the
    /// scale without controlling argv.  Defaults to [`Scale::Paper`].
    pub fn resolve(quick_flag: bool) -> Self {
        Self::from_env().unwrap_or(if quick_flag {
            Scale::Quick
        } else {
            Scale::Paper
        })
    }

    /// Parses `--quick` / `--paper` style command line arguments (overridden
    /// by `TFMCC_SCALE` when set), defaulting to [`Scale::Paper`].
    pub fn from_args() -> Self {
        Self::resolve(std::env::args().any(|a| a == "--quick"))
    }

    /// Picks between the quick and paper value of a parameter.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Serializes tests that touch the process-global `TFMCC_SCALE` variable
/// (cargo's default harness runs tests on parallel threads, and env reads
/// in one test would otherwise race mutations in another).
#[cfg(test)]
pub(crate) fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Paper.pick(1, 10), 10);
        assert_eq!(Scale::default(), Scale::Paper);
    }

    #[test]
    fn env_overrides_flags() {
        let _guard = env_lock();
        std::env::set_var("TFMCC_SCALE", "quick");
        assert_eq!(Scale::from_env(), Some(Scale::Quick));
        assert_eq!(Scale::resolve(false), Scale::Quick);
        std::env::set_var("TFMCC_SCALE", "PAPER");
        assert_eq!(Scale::from_env(), Some(Scale::Paper));
        assert_eq!(Scale::resolve(true), Scale::Paper);
        std::env::set_var("TFMCC_SCALE", "bogus");
        assert_eq!(Scale::from_env(), None);
        assert_eq!(Scale::resolve(true), Scale::Quick);
        std::env::remove_var("TFMCC_SCALE");
        assert_eq!(Scale::from_env(), None);
        assert_eq!(Scale::resolve(false), Scale::Paper);
    }
}
