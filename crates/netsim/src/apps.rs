//! Small reusable traffic agents: a constant-bit-rate source and a counting
//! sink.
//!
//! These are not part of any congestion control protocol — they provide
//! background/filler traffic for tests and examples, and the measuring sink
//! used throughout the experiment harness.

use std::any::Any;

use crate::packet::{Address, Dest, FlowId, GroupId, Packet, Payload};
use crate::sim::{Agent, Context};
use crate::stats::ThroughputMeter;
use crate::time::SimTime;

/// Sends fixed-size packets at a constant bit rate to a destination.
#[derive(Debug)]
pub struct CbrSource {
    dst: Dest,
    flow: FlowId,
    packet_size: u32,
    rate: f64,
    start_at: f64,
    stop_at: Option<f64>,
    sent_packets: u64,
}

impl CbrSource {
    /// A CBR source sending `rate` bytes/second of `packet_size`-byte packets
    /// to `dst`, starting at `start_at` seconds of simulation time.
    pub fn new(dst: Dest, flow: FlowId, packet_size: u32, rate: f64, start_at: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(packet_size > 0, "packet size must be positive");
        CbrSource {
            dst,
            flow,
            packet_size,
            rate,
            start_at,
            stop_at: None,
            sent_packets: 0,
        }
    }

    /// Stops sending at the given simulation time.
    pub fn stop_at(mut self, t: f64) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Number of packets sent so far.
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    fn interval(&self) -> f64 {
        f64::from(self.packet_size) / self.rate
    }
}

impl Agent for CbrSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let delay = (self.start_at - ctx.now().as_secs()).max(0.0);
        ctx.schedule(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if let Some(stop) = self.stop_at {
            if ctx.now().as_secs() >= stop {
                return;
            }
        }
        let pkt = Packet::new(
            ctx.addr(),
            self.dst,
            self.packet_size,
            self.flow,
            Payload::empty(),
        );
        ctx.send(pkt);
        self.sent_packets += 1;
        ctx.schedule(self.interval(), 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts and bins everything it receives.
#[derive(Debug)]
pub struct Sink {
    meter: ThroughputMeter,
    packets: u64,
    last_arrival: Option<SimTime>,
}

impl Sink {
    /// A sink binning received bytes into `bin`-second intervals.
    pub fn new(bin: f64) -> Self {
        Sink {
            meter: ThroughputMeter::new(bin),
            packets: 0,
            last_arrival: None,
        }
    }

    /// The throughput meter with everything received so far.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Number of packets received.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Time of the most recent arrival.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }
}

impl Agent for Sink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        self.meter.record(ctx.now(), u64::from(packet.size));
        self.packets += 1;
        self.last_arrival = Some(ctx.now());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convenience: the unicast destination of a sink agent.
pub fn unicast_to(addr: Address) -> Dest {
    Dest::Unicast(addr)
}

/// A [`Sink`] that subscribes to a multicast group on start — the counting
/// receiver used by multicast fan-out tests and benchmarks.  It can
/// optionally churn: leave and rejoin the group on a fixed cycle.
#[derive(Debug)]
pub struct GroupSink {
    group: GroupId,
    toggle_every: Option<f64>,
    joined: bool,
    sink: Sink,
}

impl GroupSink {
    /// A group-subscribed sink binning received bytes into `bin`-second
    /// intervals.
    pub fn new(group: GroupId, bin: f64) -> Self {
        GroupSink {
            group,
            toggle_every: None,
            joined: false,
            sink: Sink::new(bin),
        }
    }

    /// Makes the sink toggle its group membership every `period` seconds
    /// (leave, rejoin, leave, ...) — the churn workload of the fan-out
    /// benchmarks.
    pub fn churning(mut self, period: f64) -> Self {
        assert!(period > 0.0, "churn period must be positive, got {period}");
        self.toggle_every = Some(period);
        self
    }

    /// The throughput meter with everything received so far.
    pub fn meter(&self) -> &ThroughputMeter {
        self.sink.meter()
    }

    /// Number of packets received.
    pub fn packets(&self) -> u64 {
        self.sink.packets()
    }
}

impl Agent for GroupSink {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group);
        self.joined = true;
        if let Some(period) = self.toggle_every {
            ctx.schedule(period, 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.joined {
            ctx.leave_group(self.group);
        } else {
            ctx.join_group(self.group);
        }
        self.joined = !self.joined;
        if let Some(period) = self.toggle_every {
            ctx.schedule(period, 0);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        self.sink.on_packet(ctx, packet);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, Port};
    use crate::queue::QueueDiscipline;
    use crate::sim::Simulator;

    fn build() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(11);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.add_duplex_link(a, b, 1e6, 0.005, QueueDiscipline::drop_tail(100));
        (sim, a, b)
    }

    #[test]
    fn cbr_source_achieves_configured_rate() {
        let (mut sim, a, b) = build();
        let sink = sim.add_agent(b, Port(1), Box::new(Sink::new(1.0)));
        let dst = unicast_to(Address::new(b, Port(1)));
        let src = sim.add_agent(
            a,
            Port(1),
            Box::new(CbrSource::new(dst, FlowId(1), 1000, 100_000.0, 0.0)),
        );
        sim.run_until(SimTime::from_secs(10.0));
        let s: &Sink = sim.agent(sink).unwrap();
        let avg = s.meter().average_between(1.0, 9.0);
        assert!(
            (95_000.0..=105_000.0).contains(&avg),
            "average rate {avg} B/s"
        );
        let c: &CbrSource = sim.agent(src).unwrap();
        assert!(c.sent_packets() >= 990);
    }

    #[test]
    fn cbr_source_honours_start_and_stop() {
        let (mut sim, a, b) = build();
        let sink = sim.add_agent(b, Port(1), Box::new(Sink::new(0.5)));
        let dst = unicast_to(Address::new(b, Port(1)));
        sim.add_agent(
            a,
            Port(1),
            Box::new(CbrSource::new(dst, FlowId(1), 1000, 50_000.0, 2.0).stop_at(4.0)),
        );
        sim.run_until(SimTime::from_secs(10.0));
        let s: &Sink = sim.agent(sink).unwrap();
        assert_eq!(s.meter().average_between(0.0, 2.0), 0.0);
        assert!(s.meter().average_between(2.5, 3.5) > 40_000.0);
        assert_eq!(s.meter().average_between(5.0, 10.0), 0.0);
        assert!(s.last_arrival().unwrap().as_secs() < 4.2);
    }
}
