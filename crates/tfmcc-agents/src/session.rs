//! One-call construction of a complete TFMCC session inside a simulation.
//!
//! [`TfmccSessionBuilder`] is the historical single-session entry point; it
//! is a thin wrapper over the multi-session
//! [`SessionManager`] (one manager, one
//! session, the builder's explicit group/port/flow assignment), so both
//! construction paths share wiring and input validation.

use netsim::packet::{AgentId, FlowId, GroupId, NodeId, Port};
use netsim::sim::Simulator;

use tfmcc_proto::config::TfmccConfig;

use crate::manager::{SessionManager, SessionSpec};
use crate::population::{FluidPopulationAgent, PopulationSpec};
use crate::receiver_agent::TfmccReceiverAgent;
use crate::sender_agent::TfmccSenderAgent;

/// Where and when one receiver participates in the session.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverSpec {
    /// Node the receiver runs on.
    pub node: NodeId,
    /// Time at which it joins the multicast group.
    pub join_at: f64,
    /// Time at which it leaves again (never, if `None`).
    pub leave_at: Option<f64>,
    /// `(on_secs, off_secs)` churn cycle: repeatedly stay in the session
    /// for `on_secs`, leave, and rejoin `off_secs` later.
    pub churn: Option<(f64, f64)>,
}

impl ReceiverSpec {
    /// A receiver that participates for the whole simulation.
    pub fn always(node: NodeId) -> Self {
        ReceiverSpec {
            node,
            join_at: 0.0,
            leave_at: None,
            churn: None,
        }
    }

    /// A receiver that joins at `join_at`.
    pub fn joining_at(node: NodeId, join_at: f64) -> Self {
        ReceiverSpec {
            node,
            join_at,
            leave_at: None,
            churn: None,
        }
    }

    /// Adds a leave time.
    pub fn leaving_at(mut self, t: f64) -> Self {
        self.leave_at = Some(t);
        self
    }

    /// Makes the receiver churn: after each join it stays `on_secs`, leaves,
    /// waits `off_secs` and rejoins.
    pub fn churning(mut self, on_secs: f64, off_secs: f64) -> Self {
        self.churn = Some((on_secs, off_secs));
        self
    }
}

/// Parameters of a session to be built.
#[derive(Debug, Clone)]
pub struct TfmccSessionBuilder {
    /// Protocol configuration shared by sender and receivers.
    pub config: TfmccConfig,
    /// Multicast group of the session.
    pub group: GroupId,
    /// Port data packets are addressed to (receivers bind to it).
    pub data_port: Port,
    /// Port the sender listens on for receiver reports.
    pub sender_port: Port,
    /// Flow id tagging the session's data packets.
    pub flow: FlowId,
    /// Time at which the sender starts transmitting.
    pub start_at: f64,
    /// Record the sending-rate series into the statistics registry.
    pub record_rate_series: bool,
    /// Bin width (seconds) of each receiver's local throughput meter.
    pub meter_bin: f64,
}

impl Default for TfmccSessionBuilder {
    fn default() -> Self {
        TfmccSessionBuilder {
            config: TfmccConfig::default(),
            group: GroupId(1),
            data_port: Port(5000),
            sender_port: Port(5001),
            flow: FlowId(100),
            start_at: 0.0,
            record_rate_series: false,
            meter_bin: 1.0,
        }
    }
}

/// Handles to the agents of a built session.
#[derive(Debug, Clone)]
pub struct TfmccSession {
    /// The sender agent.
    pub sender: AgentId,
    /// The packet-level receiver agents, in the order of the specs passed
    /// to `build`.
    pub receivers: Vec<AgentId>,
    /// The fluid population agents, in the order of the fluid entries
    /// passed to `build_population` (empty for a pure packet-level session).
    pub fluid: Vec<AgentId>,
    /// The session's multicast group.
    pub group: GroupId,
}

impl TfmccSessionBuilder {
    /// Builds a pure packet-level session from per-receiver specs.
    ///
    /// Thin shim over [`Self::build_population`], the unified entry point
    /// that also accepts fluid populations;
    /// [`PopulationSpec::packets`] wraps a `ReceiverSpec` slice.
    #[deprecated(
        since = "0.1.0",
        note = "use build_population (PopulationSpec::packets wraps a ReceiverSpec slice)"
    )]
    pub fn build(
        &self,
        sim: &mut Simulator,
        sender_node: NodeId,
        receivers: &[ReceiverSpec],
    ) -> TfmccSession {
        self.build_population(sim, sender_node, &PopulationSpec::packets(receivers))
    }

    /// Builds the session: attaches the sender to `sender_node`, one
    /// receiver agent per [`PopulationSpec::Packet`] entry and one fluid
    /// population agent per [`PopulationSpec::Fluid`] entry, all wired to
    /// the same group and ports.
    ///
    /// This is single-session sugar over
    /// [`SessionManager::add_population_session`](crate::manager::SessionManager::add_population_session),
    /// which also validates the inputs (at least one packet-level receiver,
    /// valid fluid profiles, finite times, positive churn periods, distinct
    /// data/report ports) and documents the CLR-cohort promotion rule.
    pub fn build_population(
        &self,
        sim: &mut Simulator,
        sender_node: NodeId,
        populations: &[PopulationSpec],
    ) -> TfmccSession {
        let spec = SessionSpec {
            config: self.config.clone(),
            start_at: self.start_at,
            record_rate_series: self.record_rate_series,
            meter_bin: self.meter_bin,
            group: Some(self.group),
            data_port: Some(self.data_port),
            sender_port: Some(self.sender_port),
            flow: Some(self.flow),
        };
        let mut manager = SessionManager::new();
        let id = manager.add_population_session(sim, &spec, sender_node, populations);
        let handle = manager.session(id);
        TfmccSession {
            sender: handle.sender,
            receivers: handle.receivers.clone(),
            fluid: handle.fluid.clone(),
            group: handle.group,
        }
    }
}

impl TfmccSession {
    /// Borrow the sender agent.
    pub fn sender_agent<'a>(&self, sim: &'a Simulator) -> &'a TfmccSenderAgent {
        sim.agent(self.sender).expect("sender agent exists")
    }

    /// Borrow a receiver agent by index.
    pub fn receiver_agent<'a>(&self, sim: &'a Simulator, index: usize) -> &'a TfmccReceiverAgent {
        sim.agent(self.receivers[index])
            .expect("receiver agent exists")
    }

    /// Borrow a fluid population agent by index.
    pub fn fluid_agent<'a>(&self, sim: &'a Simulator, index: usize) -> &'a FluidPopulationAgent {
        sim.agent(self.fluid[index])
            .expect("fluid population agent exists")
    }

    /// Average throughput seen by receiver `index` over `[from, to]`, in
    /// bytes per second.
    pub fn receiver_throughput(&self, sim: &Simulator, index: usize, from: f64, to: f64) -> f64 {
        self.receiver_agent(sim, index)
            .meter()
            .average_between(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;
    use tfmcc_tcp::{TcpSender, TcpSenderConfig, TcpSink};

    /// Steady-state TFMCC over a single clean bottleneck should settle near
    /// the bottleneck rate (like TCP would), starting from slowstart.
    #[test]
    fn single_receiver_converges_to_bottleneck_rate() {
        let mut sim = Simulator::new(101);
        let s = sim.add_node("src");
        let r = sim.add_node("dst");
        // 1 Mbit/s bottleneck, 20 ms one-way delay.
        sim.add_duplex_link(s, r, 125_000.0, 0.02, QueueDiscipline::drop_tail(30));
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            s,
            &[PopulationSpec::packet(r)],
        );
        sim.run_until(SimTime::from_secs(120.0));
        let rate = session.receiver_throughput(&sim, 0, 60.0, 115.0);
        assert!(
            (60_000.0..=126_000.0).contains(&rate),
            "TFMCC should reach a large fraction of the 125 kB/s bottleneck, got {rate}"
        );
        let sender = session.sender_agent(&sim).protocol();
        assert!(!sender.in_slowstart());
        assert!(sender.clr().is_some());
    }

    /// The sender must track the most limited receiver in a star topology
    /// with heterogeneous loss.
    #[test]
    fn sender_tracks_the_lossiest_receiver() {
        let mut sim = Simulator::new(102);
        let legs = vec![
            StarLeg::clean(1_250_000.0, 0.03),
            StarLeg::clean(1_250_000.0, 0.03).with_downstream_loss(0.05),
        ];
        let star = star(&mut sim, &StarConfig::default(), &legs);
        let specs: Vec<ReceiverSpec> = star
            .receivers
            .iter()
            .map(|&n| ReceiverSpec::always(n))
            .collect();
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            star.sender,
            &PopulationSpec::packets(&specs),
        );
        sim.run_until(SimTime::from_secs(150.0));
        let sender = session.sender_agent(&sim).protocol();
        // The CLR must be receiver 2 (index 1 -> ReceiverId 2), the lossy leg.
        assert_eq!(
            sender.clr(),
            Some(tfmcc_proto::packets::ReceiverId(2)),
            "the lossy receiver must be the CLR"
        );
        // And the achieved rate should be in the region the control equation
        // gives for 5% loss / ~60 ms RTT (tens of kB/s), far below the link.
        let rate = session.receiver_throughput(&sim, 1, 80.0, 145.0);
        assert!(
            (5_000.0..=300_000.0).contains(&rate),
            "rate should be limited by the lossy leg, got {rate}"
        );
        let clean = session.receiver_throughput(&sim, 0, 80.0, 145.0);
        assert!(
            (clean - rate).abs() <= 0.2 * rate.max(clean),
            "single-rate protocol: both receivers see the same rate ({clean} vs {rate})"
        );
    }

    /// TFMCC sharing a bottleneck with one TCP flow should get a comparable
    /// long-term share (within a factor of ~3 either way).
    #[test]
    fn tfmcc_and_tcp_share_a_bottleneck() {
        let mut sim = Simulator::new(103);
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_bandwidth: 250_000.0, // 2 Mbit/s
            bottleneck_delay: 0.02,
            bottleneck_queue: QueueDiscipline::drop_tail(40),
            ..DumbbellConfig::default()
        };
        let d = netsim::topology::dumbbell(&mut sim, &cfg);
        // TFMCC on pair 0.
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            d.senders[0],
            &[PopulationSpec::packet(d.receivers[0])],
        );
        // TCP on pair 1.
        let tcp_sink = sim.add_agent(d.receivers[1], Port(1), Box::new(TcpSink::new(1.0)));
        sim.add_agent(
            d.senders[1],
            Port(1),
            Box::new(TcpSender::new(TcpSenderConfig::new(
                Address::new(d.receivers[1], Port(1)),
                FlowId(2),
            ))),
        );
        sim.run_until(SimTime::from_secs(200.0));
        let tfmcc_rate = session.receiver_throughput(&sim, 0, 80.0, 195.0);
        let tcp_rate = sim
            .agent::<TcpSink>(tcp_sink)
            .unwrap()
            .meter()
            .average_between(80.0, 195.0);
        assert!(tfmcc_rate > 10_000.0, "TFMCC starved: {tfmcc_rate}");
        assert!(tcp_rate > 10_000.0, "TCP starved: {tcp_rate}");
        let ratio = tfmcc_rate / tcp_rate;
        assert!(
            (1.0 / 4.0..=4.0).contains(&ratio),
            "TFMCC/TCP share ratio out of range: {tfmcc_rate} vs {tcp_rate}"
        );
    }

    /// Receivers eventually obtain real RTT measurements via report echoes.
    #[test]
    fn receivers_obtain_rtt_measurements() {
        let mut sim = Simulator::new(104);
        let legs: Vec<StarLeg> = (0..4)
            .map(|i| StarLeg::clean(250_000.0, 0.02 + 0.01 * i as f64).with_downstream_loss(0.01))
            .collect();
        let star = star(&mut sim, &StarConfig::default(), &legs);
        let specs: Vec<ReceiverSpec> = star
            .receivers
            .iter()
            .map(|&n| ReceiverSpec::always(n))
            .collect();
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            star.sender,
            &PopulationSpec::packets(&specs),
        );
        sim.run_until(SimTime::from_secs(120.0));
        let with_rtt = (0..4)
            .filter(|&i| {
                session
                    .receiver_agent(&sim, i)
                    .protocol()
                    .has_rtt_measurement()
            })
            .count();
        assert!(
            with_rtt >= 2,
            "at least the limiting receivers must have measured their RTT, got {with_rtt}"
        );
        // The CLR's RTT estimate should be near the true path RTT (well below
        // the 500 ms initial value).
        let sender = session.sender_agent(&sim).protocol();
        let clr = sender.clr().expect("a CLR exists");
        let idx = (clr.0 - 1) as usize;
        let rtt = session.receiver_agent(&sim, idx).protocol().rtt();
        assert!(
            rtt < 0.3,
            "CLR RTT estimate still near the initial value: {rtt}"
        );
    }

    /// A churning receiver must repeatedly leave and rejoin, receive data in
    /// every on-period, and not kill the session for a persistent receiver.
    #[test]
    fn churning_receiver_cycles_membership() {
        let mut sim = Simulator::new(106);
        let legs = vec![
            StarLeg::clean(1_250_000.0, 0.02),
            StarLeg::clean(1_250_000.0, 0.02),
        ];
        let star = star(&mut sim, &StarConfig::default(), &legs);
        let specs = vec![
            ReceiverSpec::always(star.receivers[0]),
            ReceiverSpec::joining_at(star.receivers[1], 5.0).churning(10.0, 5.0),
        ];
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            star.sender,
            &PopulationSpec::packets(&specs),
        );
        sim.run_until(SimTime::from_secs(120.0));
        let churner = session.receiver_agent(&sim, 1);
        // Joins at 5, then leave/join every 10/5 s: ≥ 14 transitions in 115 s.
        assert!(
            churner.membership_changes() >= 10,
            "churner only made {} membership changes",
            churner.membership_changes()
        );
        // It received data during on-periods...
        assert!(churner.meter().total_bytes() > 0);
        // ...and the persistent receiver kept a healthy rate overall.
        let persistent = session.receiver_throughput(&sim, 0, 60.0, 115.0);
        assert!(
            persistent > 20_000.0,
            "persistent receiver starved: {persistent} B/s"
        );
        // The simulator registered the churn in its multicast counters.
        assert!(sim.stats().counter("multicast.agent_leaves") >= 5.0);
    }

    /// A receiver joining behind a slow tail circuit must become the CLR and
    /// pull the rate down; after it leaves the rate recovers.
    #[test]
    fn late_join_and_leave_of_slow_receiver() {
        let mut sim = Simulator::new(105);
        let legs = vec![
            StarLeg::clean(1_250_000.0, 0.02),
            // 200 kbit/s = 25 kB/s tail circuit.
            StarLeg::clean(25_000.0, 0.02).with_queue(QueueDiscipline::drop_tail(10)),
        ];
        let star = star(&mut sim, &StarConfig::default(), &legs);
        let specs = vec![
            ReceiverSpec::always(star.receivers[0]),
            ReceiverSpec::joining_at(star.receivers[1], 80.0).leaving_at(160.0),
        ];
        let session = TfmccSessionBuilder::default().build_population(
            &mut sim,
            star.sender,
            &PopulationSpec::packets(&specs),
        );
        sim.run_until(SimTime::from_secs(240.0));
        let sender = session.sender_agent(&sim).protocol();
        let fast = session.receiver_agent(&sim, 0).meter();
        let before = fast.average_between(50.0, 78.0);
        let during = fast.average_between(110.0, 158.0);
        let after = fast.average_between(200.0, 238.0);
        assert!(
            during < before * 0.6,
            "slow receiver must pull the rate down: before {before}, during {during}"
        );
        assert!(
            after > during * 1.5,
            "rate must recover after the slow receiver leaves: during {during}, after {after}"
        );
        assert!(sender.stats().clr_changes >= 1);
    }
}
