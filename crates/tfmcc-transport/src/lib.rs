//! Real-network TFMCC transport over UDP.
//!
//! The paper evaluates TFMCC in ns-2 only; its future-work section plans a
//! deployment in a multicast file-synchronisation tool.  This crate provides
//! that deployment path for the reproduction: a binary wire format for the
//! protocol messages ([`wire`]) and blocking UDP endpoints ([`endpoint`])
//! that drive the same sans-I/O state machines used in the simulator.
//!
//! Native IP multicast is frequently unavailable (and was one of the paper's
//! motivating deployment obstacles), so the sender emulates the multicast
//! group by unicast fan-out to its known receivers.  This exercises exactly
//! the same protocol code paths (feedback suppression still matters because
//! every receiver hears the echoed reports in the data headers); only the
//! network-level replication differs, which is outside the congestion
//! control's scope.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod wire;

pub use endpoint::{UdpReceiverEndpoint, UdpSenderEndpoint};
pub use wire::{decode_message, encode_message, WireError, WireMessage};
