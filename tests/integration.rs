//! Cross-crate integration tests: full TFMCC sessions exercising the
//! simulator, the protocol core, the TCP substrate and the experiment
//! harness together at reduced scale.

use tfmcc::prelude::*;
use tfmcc::tcp::{TcpSender, TcpSenderConfig, TcpSink};

/// A three-receiver session behind heterogeneous links: the slowest receiver
/// must become the CLR, all receivers must see (roughly) the same rate, and
/// that rate must be governed by the slowest link.
#[test]
fn single_rate_property_holds_across_heterogeneous_receivers() {
    let mut sim = Simulator::new(1001);
    let src = sim.add_node("src");
    let hub = sim.add_node("hub");
    sim.add_duplex_link(
        src,
        hub,
        12_500_000.0,
        0.005,
        QueueDiscipline::drop_tail(200),
    );
    let bandwidths = [1_250_000.0, 250_000.0, 62_500.0]; // 10, 2, 0.5 Mbit/s
    let mut nodes = Vec::new();
    for (i, bw) in bandwidths.iter().enumerate() {
        let n = sim.add_node(&format!("r{i}"));
        sim.add_duplex_link(hub, n, *bw, 0.02, QueueDiscipline::drop_tail(40));
        nodes.push(n);
    }
    let specs: Vec<ReceiverSpec> = nodes.iter().map(|&n| ReceiverSpec::always(n)).collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        src,
        &PopulationSpec::packets(&specs),
    );
    sim.run_until(SimTime::from_secs(150.0));

    let sender = session.sender_agent(&sim).protocol();
    assert!(!sender.in_slowstart());
    assert_eq!(
        sender.clr(),
        Some(ReceiverId(3)),
        "the 0.5 Mbit/s receiver must be the CLR"
    );
    let rates: Vec<f64> = (0..3)
        .map(|i| session.receiver_throughput(&sim, i, 80.0, 145.0))
        .collect();
    // Single-rate: all receivers get essentially the same throughput.
    let max = rates.iter().cloned().fold(0.0, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max - min <= 0.25 * max,
        "single-rate violated: rates {rates:?}"
    );
    // And that rate is bounded by the slowest link.
    assert!(
        max <= 62_500.0 * 1.05,
        "rate exceeds the slowest link: {max}"
    );
    assert!(min >= 15_000.0, "group starved: {rates:?}");
}

/// TFMCC and TCP through the same bottleneck: neither flow may be starved,
/// and TFMCC must be smoother than TCP.
#[test]
fn tfmcc_coexists_with_tcp_and_is_smoother() {
    let mut sim = Simulator::new(1002);
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_bandwidth: 500_000.0, // 4 Mbit/s
        bottleneck_delay: 0.03,
        bottleneck_queue: QueueDiscipline::drop_tail(80),
        ..DumbbellConfig::default()
    };
    let d = tfmcc::sim::topology::dumbbell(&mut sim, &cfg);
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        d.senders[0],
        &[PopulationSpec::packet(d.receivers[0])],
    );
    let tcp_sink = sim.add_agent(d.receivers[1], Port(1), Box::new(TcpSink::new(1.0)));
    sim.add_agent(
        d.senders[1],
        Port(1),
        Box::new(TcpSender::new(TcpSenderConfig::new(
            Address::new(d.receivers[1], Port(1)),
            FlowId(42),
        ))),
    );
    sim.run_until(SimTime::from_secs(180.0));

    let tfmcc_meter = session.receiver_agent(&sim, 0).meter();
    let tcp_meter = sim.agent::<TcpSink>(tcp_sink).unwrap().meter();
    let tfmcc_rate = tfmcc_meter.average_between(80.0, 175.0);
    let tcp_rate = tcp_meter.average_between(80.0, 175.0);
    assert!(tfmcc_rate > 25_000.0, "TFMCC starved: {tfmcc_rate}");
    assert!(tcp_rate > 25_000.0, "TCP starved: {tcp_rate}");
    let ratio = tfmcc_rate / tcp_rate;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "shares wildly unfair: TFMCC {tfmcc_rate} vs TCP {tcp_rate}"
    );
    // Smoothness is a short-timescale property: compare bin-to-bin rate
    // changes, not total variance (TFMCC's fair share may drift slowly while
    // its instantaneous rate stays smooth).  TFMCC must be smooth in absolute
    // terms and not substantially burstier than the competing TCP goodput,
    // which the bottleneck queue already smooths considerably.
    let tfmcc_smooth = tfmcc_meter.mean_relative_change(80.0, 175.0);
    let tcp_smooth = tcp_meter.mean_relative_change(80.0, 175.0);
    assert!(
        tfmcc_smooth < 0.10,
        "TFMCC rate is not smooth: mean relative change {tfmcc_smooth:.3}"
    );
    assert!(
        tfmcc_smooth <= tcp_smooth * 1.5,
        "TFMCC should not be substantially burstier than TCP: mean relative change {tfmcc_smooth:.3} vs {tcp_smooth:.3}"
    );
}

/// Feedback implosion avoidance end to end: with many receivers behind one
/// bottleneck, the total number of feedback packets must stay far below one
/// per receiver per feedback round.
#[test]
fn feedback_volume_scales_sublinearly_with_receivers() {
    let n = 60;
    let mut sim = Simulator::new(1003);
    let src = sim.add_node("src");
    let hub = sim.add_node("hub");
    sim.add_duplex_link(src, hub, 500_000.0, 0.02, QueueDiscipline::drop_tail(60));
    let mut nodes = Vec::new();
    for i in 0..n {
        let r = sim.add_node(&format!("r{i}"));
        sim.add_duplex_link(hub, r, 12_500_000.0, 0.01, QueueDiscipline::drop_tail(100));
        nodes.push(r);
    }
    let specs: Vec<ReceiverSpec> = nodes.iter().map(|&r| ReceiverSpec::always(r)).collect();
    let session = TfmccSessionBuilder::default().build_population(
        &mut sim,
        src,
        &PopulationSpec::packets(&specs),
    );
    let duration = 120.0;
    sim.run_until(SimTime::from_secs(duration));

    let sender = session.sender_agent(&sim).protocol();
    let rounds = sender.stats().rounds.max(1);
    let feedback = sender.stats().feedback_received;
    let per_round = feedback as f64 / rounds as f64;
    // The CLR reports every RTT, other receivers are suppressed: far less
    // than one report per receiver per round.
    assert!(
        per_round < n as f64 * 0.5,
        "feedback implosion: {feedback} reports over {rounds} rounds for {n} receivers"
    );
    assert!(feedback > 0, "feedback must flow");
    // All receivers nevertheless keep receiving data.
    for i in 0..n {
        assert!(
            session.receiver_agent(&sim, i).meter().total_bytes() > 0,
            "receiver {i} got no data"
        );
    }
}

/// The experiment harness's quick scale stays runnable end to end (smoke test
/// for the per-figure binaries), including on a multi-threaded sweep runner.
#[test]
fn experiment_harness_quick_scale_smoke() {
    use tfmcc::experiments::{feedback_figs, scaling_figs, Scale, SweepRunner};
    let runner = SweepRunner::new(2);
    let figs = [
        feedback_figs::fig01_bias_cdf(&runner, Scale::Quick),
        feedback_figs::fig04_expected_feedback(&runner, Scale::Quick),
        scaling_figs::fig17_loss_events_per_rtt(&runner, Scale::Quick),
    ];
    for fig in figs {
        assert!(!fig.series.is_empty(), "{} has no series", fig.id);
        let csv = fig.to_csv();
        assert!(csv.contains("series"), "{} CSV malformed", fig.id);
        assert!(fig.to_json().render().contains(&fig.id), "JSON malformed");
    }
    // Every figure point went through the executor and was timed.
    assert!(!runner.report().records.is_empty());
}
