//! Topology partitioning for parallel domain-sharded execution.
//!
//! A *bottleneck domain* is a connected component of the topology over its
//! **intra-domain** links — the links whose propagation delay is below a
//! delay threshold chosen so that at least the requested number of
//! components appears.  Star legs and dumbbell halves fall out naturally:
//! the long-delay (bottleneck / leg) links are cut, the short access links
//! stay internal.
//!
//! The cut links bound the *lookahead*: a packet crossing between domains
//! spends at least the minimum cut-link delay in flight, so two domains can
//! simulate a window of that length in parallel without either being able
//! to affect the other inside the window (conservative synchronization).
//! [`DomainPlan`] captures the node→domain assignment, the lookahead, and
//! the stage order used to replay multicast membership deltas
//! deterministically (see `DESIGN.md`, "Parallel domain sharding").
//!
//! Partitioning is pure and deterministic: the same topology and requested
//! domain count always produce the same plan.

use crate::routing::Edge;

/// How a topology is split into bottleneck domains for one sharded run.
#[derive(Debug, Clone)]
pub struct DomainPlan {
    /// Effective number of domains (≥ 2; may be lower than requested when
    /// the topology does not decompose that far).
    pub domains: usize,
    /// Conservative lookahead in seconds: the minimum delay over links whose
    /// endpoints live in different domains.  Domains advance in lockstep
    /// windows of this length.
    pub lookahead: f64,
    /// Domain index of every node.
    pub node_domain: Vec<u32>,
    /// Domain indices grouped into execution stages, deepest components
    /// first.  Within one synchronization window the stages run serially
    /// (domains inside a stage run in parallel), so multicast membership
    /// deltas recorded by a deep stage (receiver joins/leaves at leaf
    /// hosts) are visible to the shallower stages — the ones owning the
    /// routers between the source and the leaves — before those route any
    /// packet of the same window.
    pub stages: Vec<Vec<usize>>,
}

/// Resolves the requested domain count from the `TFMCC_DOMAINS` environment
/// variable.  Unset, empty, `1`, or unparsable values mean 1 (the
/// single-threaded path); unparsable values additionally warn on stderr,
/// mirroring `TFMCC_SCHEDULER` resolution.
pub fn domains_from_env() -> usize {
    match std::env::var("TFMCC_DOMAINS") {
        Ok(value) => {
            let trimmed = value.trim();
            if trimmed.is_empty() {
                return 1;
            }
            match trimmed.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!(
                        "warning: ignoring invalid TFMCC_DOMAINS value '{value}' (want a positive integer)"
                    );
                    1
                }
            }
        }
        Err(_) => 1,
    }
}

/// Deterministic union-find over node indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root index wins, keeping component representatives
            // deterministic regardless of union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Computes a sharding plan, or `None` when the topology cannot be split
/// (fewer than two components under every threshold, no links at all, or
/// more depth classes than requested domains).  `weights[n]` is the number
/// of agents on node `n`, used to balance components across domains.
pub fn partition(
    nodes: usize,
    edges: &[Edge],
    weights: &[u64],
    requested: usize,
) -> Option<DomainPlan> {
    if requested < 2 || nodes < 2 || edges.is_empty() {
        return None;
    }

    // Candidate thresholds: the distinct link delays, largest first.  A
    // threshold δ cuts every link with delay ≥ δ; the largest δ yielding
    // enough components maximizes the lookahead and minimizes the cut.
    let mut delays: Vec<f64> = edges.iter().map(|e| e.delay).collect();
    delays.sort_by(|a, b| b.partial_cmp(a).expect("link delays are finite"));
    delays.dedup();

    let components_for = |threshold: f64| -> Vec<usize> {
        let mut uf = UnionFind::new(nodes);
        for e in edges {
            if e.delay < threshold {
                uf.union(e.from.0, e.to.0);
            }
        }
        (0..nodes).map(|n| uf.find(n)).collect()
    };

    // The largest threshold that splits the topology at all wins: it keeps
    // the cut minimal and the lookahead (= window length) maximal.  When it
    // yields fewer components than requested the plan degrades gracefully
    // to that count — a dumbbell asked for 4 domains still runs as its two
    // halves rather than shattering into tiny short-lookahead fragments.
    let mut chosen: Option<Vec<usize>> = None;
    for &delta in &delays {
        let roots = components_for(delta);
        if distinct_count(&roots) >= 2 {
            chosen = Some(roots);
            break;
        }
    }
    let roots = chosen?;

    // Densify component ids in first-appearance (node-id) order.
    let mut comp_of_root: Vec<(usize, usize)> = Vec::new();
    let mut comp: Vec<usize> = vec![usize::MAX; nodes];
    for n in 0..nodes {
        let root = roots[n];
        let id = match comp_of_root.iter().find(|(r, _)| *r == root) {
            Some(&(_, id)) => id,
            None => {
                let id = comp_of_root.len();
                comp_of_root.push((root, id));
                id
            }
        };
        comp[n] = id;
    }
    let n_comps = comp_of_root.len();

    // BFS depth from node 0 over the undirected topology (unreachable nodes
    // keep depth 0 — they cannot exchange packets with the main component).
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for e in edges {
        adjacency[e.from.0].push(e.to.0);
        adjacency[e.to.0].push(e.from.0);
    }
    let mut depth = vec![0usize; nodes];
    let mut seen = vec![false; nodes];
    let mut frontier = std::collections::VecDeque::new();
    seen[0] = true;
    frontier.push_back(0usize);
    while let Some(n) = frontier.pop_front() {
        for &m in &adjacency[n] {
            if !seen[m] {
                seen[m] = true;
                depth[m] = depth[n] + 1;
                frontier.push_back(m);
            }
        }
    }

    // Per-component depth class (max node depth) and agent weight.
    let mut comp_depth = vec![0usize; n_comps];
    let mut comp_weight = vec![0u64; n_comps];
    for n in 0..nodes {
        let c = comp[n];
        comp_depth[c] = comp_depth[c].max(depth[n]);
        comp_weight[c] += weights.get(n).copied().unwrap_or(0);
    }

    // Depth classes, deepest first.  Every domain holds components of a
    // single class (otherwise its event stream could not be staged), so the
    // class count bounds the minimum domain count.
    let mut classes: Vec<usize> = comp_depth.clone();
    classes.sort_unstable_by(|a, b| b.cmp(a));
    classes.dedup();
    if classes.len() > requested || classes.len() < 2 {
        // Either too many classes to honor the request, or a single class
        // (no staging possible — membership deltas would have no defined
        // replay order).  Fall back to single-threaded execution.
        return None;
    }

    // Distribute the domain budget over the classes proportionally to
    // weight (every class gets at least one domain, and no more domains
    // than it has components).
    let total_weight: u64 = comp_weight.iter().sum::<u64>().max(1);
    let mut class_comps: Vec<Vec<usize>> = classes
        .iter()
        .map(|&d| (0..n_comps).filter(|&c| comp_depth[c] == d).collect())
        .collect();
    let mut budget = requested;
    let mut class_bins: Vec<usize> = vec![0; classes.len()];
    for (i, comps) in class_comps.iter().enumerate() {
        let remaining_classes = classes.len() - i - 1;
        let w: u64 = comps.iter().map(|&c| comp_weight[c]).sum();
        let share = ((requested as u64 * w + total_weight / 2) / total_weight) as usize;
        let bins = share
            .max(1)
            .min(comps.len())
            .min(budget.saturating_sub(remaining_classes));
        class_bins[i] = bins.max(1);
        budget -= class_bins[i];
    }

    // Greedy balance: biggest components first into the lightest bin,
    // deterministic tie-breaks by bin index and component id.
    let mut node_domain = vec![0u32; nodes];
    let mut stages: Vec<Vec<usize>> = Vec::new();
    let mut next_domain = 0usize;
    for (i, comps) in class_comps.iter_mut().enumerate() {
        comps.sort_by(|&a, &b| comp_weight[b].cmp(&comp_weight[a]).then(a.cmp(&b)));
        let bins = class_bins[i];
        let first = next_domain;
        let mut bin_weight = vec![0u64; bins];
        let mut comp_domain = vec![0usize; n_comps];
        for &c in comps.iter() {
            let lightest = (0..bins)
                .min_by_key(|&b| (bin_weight[b], b))
                .expect("bins >= 1");
            bin_weight[lightest] += comp_weight[c];
            comp_domain[c] = first + lightest;
        }
        for n in 0..nodes {
            if comps.contains(&comp[n]) {
                node_domain[n] = comp_domain[comp[n]] as u32;
            }
        }
        stages.push((first..first + bins).collect());
        next_domain += bins;
    }
    let domains = next_domain;
    if domains < 2 {
        return None;
    }

    // Lookahead: minimum delay over links whose endpoints landed in
    // different domains (≥ the chosen threshold by construction, but two
    // components merged into one domain can hide a cut, so recompute).
    let mut lookahead = f64::INFINITY;
    for e in edges {
        if node_domain[e.from.0] != node_domain[e.to.0] {
            lookahead = lookahead.min(e.delay);
        }
    }
    if !lookahead.is_finite() {
        return None;
    }

    Some(DomainPlan {
        domains,
        lookahead,
        node_domain,
        stages,
    })
}

fn distinct_count(roots: &[usize]) -> usize {
    let mut sorted: Vec<usize> = roots.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{LinkId, NodeId};

    fn duplex(edges: &mut Vec<Edge>, a: usize, b: usize, delay: f64) {
        for (from, to) in [(a, b), (b, a)] {
            edges.push(Edge {
                link: LinkId(edges.len()),
                from: NodeId(from),
                to: NodeId(to),
                delay,
            });
        }
    }

    /// sender(0) — hub(1) — N receivers, short sender link, long legs.
    fn star_edges(receivers: usize) -> Vec<Edge> {
        let mut edges = Vec::new();
        duplex(&mut edges, 0, 1, 0.001);
        for r in 0..receivers {
            duplex(&mut edges, 1, 2 + r, 0.02);
        }
        edges
    }

    #[test]
    fn star_partitions_into_core_and_leg_domains() {
        let edges = star_edges(8);
        let weights = vec![1u64; 10];
        let plan = partition(10, &edges, &weights, 4).expect("star splits");
        assert_eq!(plan.domains, 4);
        assert!((plan.lookahead - 0.02).abs() < 1e-12);
        // Sender and hub share a domain; every receiver is in a leg domain.
        assert_eq!(plan.node_domain[0], plan.node_domain[1]);
        for r in 2..10 {
            assert_ne!(plan.node_domain[r], plan.node_domain[0]);
        }
        // Legs (deeper) run before the core.
        assert_eq!(plan.stages.len(), 2);
        assert!(plan.stages[0].contains(&(plan.node_domain[2] as usize)));
        assert!(plan.stages[1] == vec![plan.node_domain[0] as usize]);
        // Receivers spread over the three leg domains roughly evenly.
        let mut counts = [0usize; 4];
        for r in 2..10 {
            counts[plan.node_domain[r] as usize] += 1;
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() == 3);
    }

    #[test]
    fn dumbbell_splits_into_two_halves() {
        // left_router(0) = right_router(1) bottleneck 0.02; 3 senders on the
        // left, 3 receivers on the right, access delay 0.002.
        let mut edges = Vec::new();
        duplex(&mut edges, 0, 1, 0.02);
        for i in 0..3 {
            duplex(&mut edges, 0, 2 + 2 * i, 0.002);
            duplex(&mut edges, 1, 3 + 2 * i, 0.002);
        }
        let weights = vec![1u64; 8];
        let plan = partition(8, &edges, &weights, 4).expect("dumbbell splits");
        // Only two components exist at the coarse threshold; the plan
        // degrades gracefully instead of shattering into tiny domains.
        assert_eq!(plan.domains, 2);
        assert!((plan.lookahead - 0.02).abs() < 1e-12);
        assert_eq!(plan.node_domain[0], plan.node_domain[2]);
        assert_eq!(plan.node_domain[1], plan.node_domain[3]);
        assert_ne!(plan.node_domain[0], plan.node_domain[1]);
    }

    #[test]
    fn uniform_delay_topology_does_not_shard() {
        // One delay class → one stage → no defined delta replay order.
        let mut edges = Vec::new();
        duplex(&mut edges, 0, 1, 0.01);
        duplex(&mut edges, 1, 2, 0.01);
        assert!(partition(3, &edges, &[1, 1, 1], 2).is_none());
    }

    #[test]
    fn degenerate_inputs_do_not_shard() {
        assert!(partition(0, &[], &[], 4).is_none());
        assert!(partition(5, &[], &[1; 5], 4).is_none());
        let edges = star_edges(4);
        assert!(partition(6, &edges, &[1; 6], 1).is_none());
    }

    #[test]
    fn partition_is_deterministic() {
        let edges = star_edges(16);
        let weights = vec![1u64; 18];
        let a = partition(18, &edges, &weights, 4).unwrap();
        let b = partition(18, &edges, &weights, 4).unwrap();
        assert_eq!(a.node_domain, b.node_domain);
        assert_eq!(a.stages, b.stages);
        assert_eq!(a.lookahead, b.lookahead);
    }
}
