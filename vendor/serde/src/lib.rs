//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this crate provides just
//! enough surface for `#[derive(Serialize, Deserialize)]` annotations in the
//! workspace to compile: two marker traits and the matching derive macros
//! (re-exported from the vendored `serde_derive`).  No serialization backend
//! ships with it; when a real data format is needed, swap this path
//! dependency for the real `serde` in `[workspace.dependencies]` — the
//! annotated types need no changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// The vendored derive implements this as a no-op; the real `serde` derive
/// generates the full visitor machinery for the same annotation.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
