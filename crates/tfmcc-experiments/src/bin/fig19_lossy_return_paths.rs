//! Regenerates fig19_lossy_return_paths of the TFMCC paper.  Pass `--quick` for a reduced
//! run suitable for smoke testing; the default is the paper's scale.

use tfmcc_experiments::scale::Scale;

fn main() {
    let scale = Scale::from_args();
    let figure = tfmcc_experiments::fairness_figs::fig19_lossy_return_paths(scale);
    print!("{}", figure.to_csv());
}
