//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate implements the
//! slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments are
//!   drawn from strategies (`arg in strategy` syntax);
//! * numeric range strategies (`0u64..5`, `1e-6f64..0.5`, `lo..=hi`);
//! * [`any`] for `bool` and the integer/float primitives;
//! * [`collection::vec`] and [`option::of`] combinators;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Each test runs a fixed number of cases (default 64, override with the
//! `PROPTEST_CASES` environment variable) against a generator seeded from the
//! test's name, so failures reproduce deterministically.  There is no
//! shrinking: a failing case panics with the drawn values available in the
//! assertion message.  Swap the `[workspace.dependencies]` path for the real
//! `proptest` to get shrinking and persistence.

#![warn(missing_docs)]

/// The deterministic generator driving each property test.
pub mod test_runner {
    /// Default number of cases per property when `PROPTEST_CASES` is unset.
    pub const DEFAULT_CASES: u64 = 64;

    /// Returns the number of cases each property should run.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CASES)
    }

    /// A small deterministic generator (xoshiro256++ seeded via splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = hash;
            TestRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and primitive implementations.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 strategy range");
            lo + ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only, spread over a wide dynamic range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exponent = (rng.next_u64() % 64) as i32 - 32;
            mantissa * (exponent as f64).exp2()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`](super::any).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors whose length lies in `size` (half-open, as in
    /// `proptest::collection::vec(elem, 1..200)`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// Produces `None` about a quarter of the time, otherwise `Some` of the
    /// inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample_value(rng))
            }
        }
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Wraps `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported form (one or more functions, each argument `name in strategy`):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u64..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                    )+
                    let inputs = [$(format!("{}={:?}", stringify!($arg), $arg)),+].join(", ");
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {inputs}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in -1.5f64..2.5) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u32..100, 1..20),
            o in crate::option::of(1u64..=3),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
            if let Some(x) = o {
                prop_assert!((1..=3).contains(&x));
            }
            prop_assert_eq!(flag, flag);
        }
    }
}
